package mem

import "testing"

// TestAddrAddOverflowPanics: offsets that would carry into the space-id
// bits must fault loudly instead of silently aliasing another space.
func TestAddrAddOverflowPanics(t *testing.T) {
	a := MakeAddr(3, uint64(offsetMask)-1)
	if got := a.Add(1); got.Space() != 3 || got.Offset() != uint64(offsetMask) {
		t.Fatalf("Add(1) at boundary = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add past offsetBits did not panic")
		}
	}()
	a.Add(2)
}

// allocAndCheckZero allocates n words and fails if any handed-out word is
// non-zero.
func allocAndCheckZero(t *testing.T, s *Space, n uint64) Addr {
	t.Helper()
	a, ok := s.Alloc(n)
	if !ok {
		t.Fatalf("Alloc(%d) failed at top %d", n, s.top)
	}
	for i := uint64(0); i < n; i++ {
		if w := s.words[a.Offset()+i]; w != 0 {
			t.Fatalf("word %d of %d-word alloc at %v = %#x, want 0", i, n, a, w)
		}
	}
	return a
}

// scribble fills an allocated region with junk, as a mutator would.
func scribble(s *Space, a Addr, n uint64) {
	for i := uint64(0); i < n; i++ {
		s.words[a.Offset()+i] = ^uint64(0)
	}
}

// TestLazyZeroReusedArena is the regression test for lazy zeroing: after a
// Reset, the arena hands out stale dirty words, and every allocation must
// still observe zeroed memory — including allocations that straddle the
// dirty high-water mark into never-used (already-zero) territory.
func TestLazyZeroReusedArena(t *testing.T) {
	s := NewSpace(1, 64)
	a := allocAndCheckZero(t, s, 24)
	scribble(s, a, 24)
	s.Reset() // dirtyTo is now 25

	// Entirely below the high-water mark: needs the memclr.
	b := allocAndCheckZero(t, s, 10)
	scribble(s, b, 10)
	// Straddling the mark: words 11..24 are dirty, 25..40 still fresh.
	allocAndCheckZero(t, s, 30)

	// A second, shallower cycle must not lower the mark: after this Reset
	// the dirty region is still the 41-word high-water extent.
	s.Reset()
	c := allocAndCheckZero(t, s, 40)
	scribble(s, c, 40)

	s.Reset()
	allocAndCheckZero(t, s, 63) // full-arena pass over the dirtiest state
}

// TestLazyZeroSurvivesGrow: growing a space preserves contents below top
// and must keep handing out zeroed words above it, even though the grown
// arena is a fresh allocation with a reset high-water mark.
func TestLazyZeroSurvivesGrow(t *testing.T) {
	h := NewHeap()
	s := h.AddSpace(16)
	a, _ := s.Alloc(8)
	scribble(s, a, 8)
	s = h.GrowSpace(s.ID(), 64)
	for i := uint64(0); i < 8; i++ {
		if h.Load(a.Add(i)) != ^uint64(0) {
			t.Fatal("grow lost contents")
		}
	}
	allocAndCheckZero(t, s, 40)
}

// TestEagerZeroingMatchesLazy: the reference eager-zeroing path must be
// observationally identical — same addresses, same zeroed contents.
func TestEagerZeroingMatchesLazy(t *testing.T) {
	SetEagerZeroing(true)
	defer SetEagerZeroing(false)
	s := NewSpace(1, 64)
	a := allocAndCheckZero(t, s, 24)
	scribble(s, a, 24)
	s.Reset()
	b := allocAndCheckZero(t, s, 10)
	scribble(s, b, 10)
	allocAndCheckZero(t, s, 30)
}
