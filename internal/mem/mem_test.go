package mem

import (
	"testing"
	"testing/quick"
)

func TestAddrPacking(t *testing.T) {
	cases := []struct {
		space  SpaceID
		offset uint64
	}{
		{1, 1},
		{1, 0xdeadbeef},
		{7, MaxSpaceWords - 1},
		{255, 42},
	}
	for _, c := range cases {
		a := MakeAddr(c.space, c.offset)
		if a.Space() != c.space {
			t.Errorf("MakeAddr(%d,%d).Space() = %d", c.space, c.offset, a.Space())
		}
		if a.Offset() != c.offset {
			t.Errorf("MakeAddr(%d,%d).Offset() = %d", c.space, c.offset, a.Offset())
		}
	}
}

func TestAddrPackingProperty(t *testing.T) {
	f := func(space uint16, offset uint32) bool {
		s := SpaceID(space) + 1
		o := uint64(offset) + 1
		a := MakeAddr(s, o)
		return a.Space() == s && a.Offset() == o && !a.IsNil()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNil(t *testing.T) {
	if !Nil.IsNil() {
		t.Error("Nil.IsNil() = false")
	}
	if Nil.String() != "nil" {
		t.Errorf("Nil.String() = %q", Nil.String())
	}
	if MakeAddr(1, 1).IsNil() {
		t.Error("MakeAddr(1,1).IsNil() = true")
	}
}

func TestAddrAdd(t *testing.T) {
	a := MakeAddr(3, 100)
	b := a.Add(17)
	if b.Space() != 3 || b.Offset() != 117 {
		t.Errorf("Add: got %v", b)
	}
}

func TestSpaceAlloc(t *testing.T) {
	s := NewSpace(1, 10)
	if s.Capacity() != 10 {
		t.Fatalf("Capacity = %d", s.Capacity())
	}
	a, ok := s.Alloc(4)
	if !ok || a.Offset() != 1 {
		t.Fatalf("first alloc: %v %v", a, ok)
	}
	b, ok := s.Alloc(6)
	if !ok || b.Offset() != 5 {
		t.Fatalf("second alloc: %v %v", b, ok)
	}
	if s.Used() != 10 || s.Free() != 0 {
		t.Errorf("Used=%d Free=%d", s.Used(), s.Free())
	}
	if _, ok := s.Alloc(1); ok {
		t.Error("alloc in full space succeeded")
	}
}

func TestSpaceAllocZeroes(t *testing.T) {
	s := NewSpace(1, 8)
	a, _ := s.Alloc(8)
	h := NewHeap()
	h.spaces = append(h.spaces, s)
	for i := uint64(0); i < 8; i++ {
		h.Store(a.Add(i), ^uint64(0))
	}
	s.Reset()
	b, ok := s.Alloc(8)
	if !ok || b != a {
		t.Fatalf("re-alloc after reset: %v %v", b, ok)
	}
	for i := uint64(0); i < 8; i++ {
		if h.Load(b.Add(i)) != 0 {
			t.Fatalf("word %d not zeroed after reuse", i)
		}
	}
}

func TestSpaceContains(t *testing.T) {
	s := NewSpace(2, 10)
	a, _ := s.Alloc(3)
	if !s.Contains(a) || !s.Contains(a.Add(2)) {
		t.Error("Contains rejects allocated address")
	}
	if s.Contains(a.Add(3)) {
		t.Error("Contains accepts unallocated address")
	}
	if s.Contains(MakeAddr(3, 1)) {
		t.Error("Contains accepts foreign space")
	}
	if s.Contains(Nil) {
		t.Error("Contains accepts nil")
	}
}

func TestHeapLoadStore(t *testing.T) {
	h := NewHeap()
	s := h.AddSpace(100)
	if s.ID() != 1 {
		t.Fatalf("first space id = %d", s.ID())
	}
	a, _ := s.Alloc(5)
	h.Store(a.Add(2), 0xcafe)
	if got := h.Load(a.Add(2)); got != 0xcafe {
		t.Errorf("Load = %#x", got)
	}
	if got := h.Load(a); got != 0 {
		t.Errorf("fresh word = %#x", got)
	}
}

func TestHeapCopyAcrossSpaces(t *testing.T) {
	h := NewHeap()
	s1 := h.AddSpace(16)
	s2 := h.AddSpace(16)
	src, _ := s1.Alloc(4)
	dst, _ := s2.Alloc(4)
	for i := uint64(0); i < 4; i++ {
		h.Store(src.Add(i), uint64(i)*3+1)
	}
	h.Copy(dst, src, 4)
	for i := uint64(0); i < 4; i++ {
		if h.Load(dst.Add(i)) != uint64(i)*3+1 {
			t.Fatalf("word %d mismatch after copy", i)
		}
	}
}

func TestReplaceSpace(t *testing.T) {
	h := NewHeap()
	s := h.AddSpace(8)
	id := s.ID()
	a, _ := s.Alloc(2)
	h.Store(a, 99)
	ns := h.ReplaceSpace(id, 32)
	if ns.ID() != id {
		t.Fatalf("replaced space id changed: %d", ns.ID())
	}
	if ns.Capacity() != 32 || ns.Used() != 0 {
		t.Errorf("replaced space cap=%d used=%d", ns.Capacity(), ns.Used())
	}
	if h.Space(id) != ns {
		t.Error("heap still returns old space")
	}
}

func TestWordsAliasing(t *testing.T) {
	h := NewHeap()
	s := h.AddSpace(10)
	a, _ := s.Alloc(4)
	w := h.Words(a, 4)
	w[1] = 7
	if h.Load(a.Add(1)) != 7 {
		t.Error("Words view does not alias storage")
	}
}

func TestAllocStressProperty(t *testing.T) {
	// Sequential allocations never overlap and fill the space exactly.
	f := func(sizes []uint8) bool {
		s := NewSpace(1, 4096)
		var prevEnd uint64 = 1
		for _, raw := range sizes {
			n := uint64(raw%32) + 1
			a, ok := s.Alloc(n)
			if !ok {
				return s.Free() < n
			}
			if a.Offset() != prevEnd {
				return false
			}
			prevEnd = a.Offset() + n
		}
		return s.Used() == prevEnd-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGrowSpacePreservesContents(t *testing.T) {
	h := NewHeap()
	s := h.AddSpace(8)
	a, _ := s.Alloc(4)
	for i := uint64(0); i < 4; i++ {
		h.Store(a.Add(i), 100+i)
	}
	g := h.GrowSpace(s.ID(), 64)
	if g.Capacity() != 64 || g.Used() != 4 {
		t.Fatalf("grown space cap=%d used=%d", g.Capacity(), g.Used())
	}
	for i := uint64(0); i < 4; i++ {
		if h.Load(a.Add(i)) != 100+i {
			t.Fatalf("word %d lost in grow", i)
		}
	}
	b, ok := g.Alloc(60)
	if !ok || b.Offset() != 5 {
		t.Fatalf("alloc after grow: %v %v", b, ok)
	}
}

func TestGrowSpaceShrinkBelowUsedPanics(t *testing.T) {
	h := NewHeap()
	s := h.AddSpace(16)
	s.Alloc(10)
	defer func() {
		if recover() == nil {
			t.Fatal("shrink below used did not panic")
		}
	}()
	h.GrowSpace(s.ID(), 5)
}

func TestPanicsOnInvalidOperations(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	h := NewHeap()
	h.AddSpace(8)
	assertPanics("NewSpace too large", func() { NewSpace(1, MaxSpaceWords) })
	assertPanics("ReplaceSpace(0)", func() { h.ReplaceSpace(0, 8) })
	assertPanics("ReplaceSpace(99)", func() { h.ReplaceSpace(99, 8) })
	assertPanics("FreeSpace(0)", func() { h.FreeSpace(0) })
	assertPanics("FreeSpace(99)", func() { h.FreeSpace(99) })
	assertPanics("SpaceOf(nil)", func() { h.SpaceOf(Nil) })
	assertPanics("SpaceOf(unknown)", func() { h.SpaceOf(MakeAddr(42, 1)) })
}

func TestFreeSpaceFaultsDanglingAccess(t *testing.T) {
	h := NewHeap()
	s := h.AddSpace(8)
	a, _ := s.Alloc(2)
	h.FreeSpace(s.ID())
	defer func() {
		if recover() == nil {
			t.Fatal("dangling load did not fault")
		}
	}()
	h.Load(a)
}

func TestSpaceOfValid(t *testing.T) {
	h := NewHeap()
	s := h.AddSpace(8)
	a, _ := s.Alloc(1)
	if h.SpaceOf(a) != s {
		t.Fatal("SpaceOf returned wrong space")
	}
}

func TestAddrString(t *testing.T) {
	if got := MakeAddr(3, 255).String(); got != "3:0xff" {
		t.Errorf("String = %q", got)
	}
}
