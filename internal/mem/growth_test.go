package mem

import (
	"strings"
	"testing"
)

// TestGrowSpaceBelowUsedGrowthError drives the shrink-below-used edge and
// inspects the typed panic value instead of parsing the message: the
// GrowthError must carry the space id, the words in use, and the
// requested capacity exactly.
func TestGrowSpaceBelowUsedGrowthError(t *testing.T) {
	h := NewHeap()
	s := h.AddSpace(128)
	if _, ok := s.Alloc(100); !ok {
		t.Fatal("seed allocation failed")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("GrowSpace below used did not panic")
		}
		ge, ok := r.(GrowthError)
		if !ok {
			t.Fatalf("panic value is %T, want GrowthError", r)
		}
		if ge.Space != s.ID() || ge.Used != 100 || ge.Requested != 99 {
			t.Errorf("GrowthError{Space: %d, Used: %d, Requested: %d}, want {%d, 100, 99}",
				ge.Space, ge.Used, ge.Requested, s.ID())
		}
		if ge.Op == "" {
			t.Error("GrowthError.Op is empty")
		}
		msg := ge.Error()
		for _, want := range []string{"used 100 words", "requested 99 words"} {
			if !strings.Contains(msg, want) {
				t.Errorf("Error() = %q, missing %q", msg, want)
			}
		}
	}()
	h.GrowSpace(s.ID(), 99)
}

// TestGrowSpaceAtUsedIsLegal pins the boundary: growing to exactly the
// used extent is a legal (if useless) resize, not a failure.
func TestGrowSpaceAtUsedIsLegal(t *testing.T) {
	h := NewHeap()
	s := h.AddSpace(128)
	if _, ok := s.Alloc(64); !ok {
		t.Fatal("seed allocation failed")
	}
	g := h.GrowSpace(s.ID(), 64)
	if g.Used() != 64 || g.Capacity() != 64 {
		t.Errorf("resize-to-used gave used %d / cap %d, want 64/64", g.Used(), g.Capacity())
	}
}
