// Package mem provides the word-addressed arena memory that the whole
// simulated runtime lives in.
//
// The paper's runtime manages raw machine memory on a DEC Alpha; we cannot
// (and must not) take addresses into Go's own garbage-collected heap, so
// every simulated object lives in a Space: a flat []uint64 arena with a bump
// allocation pointer. A simulated pointer is an Addr packing a space id and
// a word offset. The Go collector never traces simulated object graphs.
package mem

import "fmt"

// WordSize is the size in bytes of one simulated machine word.
// The paper's machine is a 64-bit Alpha, so one word is 8 bytes.
const WordSize = 8

// Addr is a simulated pointer: a space id in the high bits and a word
// offset in the low bits. The zero Addr is the simulated nil.
type Addr uint64

const (
	offsetBits = 40
	offsetMask = (Addr(1) << offsetBits) - 1

	// MaxSpaceWords is the largest number of words a single space can hold.
	MaxSpaceWords = 1 << offsetBits
)

// Nil is the simulated null pointer.
const Nil Addr = 0

// MakeAddr packs a space id and a word offset into an Addr.
func MakeAddr(space SpaceID, offset uint64) Addr {
	return Addr(space)<<offsetBits | Addr(offset)
}

// Space returns the space id component of the address.
func (a Addr) Space() SpaceID { return SpaceID(a >> offsetBits) }

// Offset returns the word offset component of the address.
func (a Addr) Offset() uint64 { return uint64(a & offsetMask) }

// Add returns the address delta words past a, staying within the same space.
func (a Addr) Add(delta uint64) Addr { return a + Addr(delta) }

// IsNil reports whether a is the simulated null pointer.
func (a Addr) IsNil() bool { return a == Nil }

// String renders the address as space:offset for diagnostics.
func (a Addr) String() string {
	if a.IsNil() {
		return "nil"
	}
	return fmt.Sprintf("%d:%#x", a.Space(), a.Offset())
}

// SpaceID names a Space within a Heap. Space id 0 is reserved so that
// Addr(0) can serve as nil.
type SpaceID uint32

// Space is one contiguous arena with bump allocation. Offsets start at 1:
// offset 0 of space 0 would collide with the nil address, and keeping the
// rule uniform across spaces simplifies the math.
type Space struct {
	id    SpaceID
	words []uint64
	top   uint64 // next free word offset; starts at 1
	limit uint64 // capacity in words (len(words))
}

// NewSpace creates a space holding capacity words of usable storage.
func NewSpace(id SpaceID, capacity uint64) *Space {
	if capacity+1 > MaxSpaceWords {
		panic(fmt.Sprintf("mem: space %d capacity %d exceeds max", id, capacity))
	}
	return &Space{
		id:    id,
		words: make([]uint64, capacity+1),
		top:   1,
		limit: capacity + 1,
	}
}

// ID returns the space's id.
func (s *Space) ID() SpaceID { return s.id }

// Alloc reserves n words and returns the address of the first, or false if
// the space is full. The reserved words are zeroed (arenas are reused).
func (s *Space) Alloc(n uint64) (Addr, bool) {
	if s.top+n > s.limit {
		return Nil, false
	}
	base := s.top
	s.top += n
	w := s.words[base : base+n]
	for i := range w {
		w[i] = 0
	}
	return MakeAddr(s.id, base), true
}

// Used returns the number of words allocated so far.
func (s *Space) Used() uint64 { return s.top - 1 }

// Capacity returns the usable capacity of the space in words.
func (s *Space) Capacity() uint64 { return s.limit - 1 }

// Free returns the number of words still available.
func (s *Space) Free() uint64 { return s.limit - s.top }

// Reset discards all allocations, returning the space to empty.
func (s *Space) Reset() { s.top = 1 }

// Contains reports whether a points into this space's allocated region.
func (s *Space) Contains(a Addr) bool {
	return a.Space() == s.id && a.Offset() >= 1 && a.Offset() < s.top
}

// Heap is the collection of spaces making up the simulated address space.
// Space ids index into the spaces slice; id 0 is always nil (reserved).
type Heap struct {
	spaces []*Space
}

// NewHeap creates an empty heap with the reserved nil space slot.
func NewHeap() *Heap {
	return &Heap{spaces: make([]*Space, 1, 8)}
}

// AddSpace creates and registers a new space of the given capacity.
func (h *Heap) AddSpace(capacity uint64) *Space {
	id := SpaceID(len(h.spaces))
	s := NewSpace(id, capacity)
	h.spaces = append(h.spaces, s)
	return s
}

// ReplaceSpace swaps in a fresh space of the given capacity under an
// existing id, discarding the old contents. Collectors use this to resize
// semispaces between collections.
func (h *Heap) ReplaceSpace(id SpaceID, capacity uint64) *Space {
	if int(id) <= 0 || int(id) >= len(h.spaces) {
		panic(fmt.Sprintf("mem: ReplaceSpace of unknown space %d", id))
	}
	s := NewSpace(id, capacity)
	h.spaces[id] = s
	return s
}

// GrowSpace resizes the space with the given id to the new capacity,
// preserving its contents and allocation pointer (offsets are stable, so
// all addresses into the space remain valid). Shrinking below the used
// size panics. Collectors use this to apply liveness-ratio resizing
// policies between collections without moving objects.
func (h *Heap) GrowSpace(id SpaceID, capacity uint64) *Space {
	old := h.Space(id)
	if capacity < old.Used() {
		panic(fmt.Sprintf("mem: GrowSpace(%d, %d) below used %d", id, capacity, old.Used()))
	}
	s := NewSpace(id, capacity)
	copy(s.words, old.words[:old.top])
	s.top = old.top
	h.spaces[id] = s
	return s
}

// FreeSpace releases the space with the given id. Ids are not reused, so a
// dangling simulated pointer into a freed space faults loudly (nil panic)
// instead of silently reading reused memory.
func (h *Heap) FreeSpace(id SpaceID) {
	if int(id) <= 0 || int(id) >= len(h.spaces) {
		panic(fmt.Sprintf("mem: FreeSpace of unknown space %d", id))
	}
	h.spaces[id] = nil
}

// Space returns the space with the given id.
func (h *Heap) Space(id SpaceID) *Space {
	return h.spaces[id]
}

// NumSpaces returns the number of space ids ever issued, including the
// reserved nil slot and freed spaces. Valid ids are 1..NumSpaces()-1.
func (h *Heap) NumSpaces() int { return len(h.spaces) }

// SpaceOf returns the space an address points into.
func (h *Heap) SpaceOf(a Addr) *Space {
	id := a.Space()
	if int(id) <= 0 || int(id) >= len(h.spaces) {
		panic(fmt.Sprintf("mem: address %v has no space", a))
	}
	return h.spaces[id]
}

// Load reads the word at address a.
func (h *Heap) Load(a Addr) uint64 {
	return h.spaces[a.Space()].words[a.Offset()]
}

// Store writes the word at address a.
func (h *Heap) Store(a Addr, v uint64) {
	h.spaces[a.Space()].words[a.Offset()] = v
}

// Words returns a mutable view of n words starting at a. The view aliases
// arena storage; callers must not retain it across a space Reset or Replace.
func (h *Heap) Words(a Addr, n uint64) []uint64 {
	s := h.spaces[a.Space()]
	off := a.Offset()
	return s.words[off : off+n]
}

// Copy copies n words from src to dst, which may be in different spaces.
func (h *Heap) Copy(dst, src Addr, n uint64) {
	copy(h.Words(dst, n), h.Words(src, n))
}
