// Package mem provides the word-addressed arena memory that the whole
// simulated runtime lives in.
//
// The paper's runtime manages raw machine memory on a DEC Alpha; we cannot
// (and must not) take addresses into Go's own garbage-collected heap, so
// every simulated object lives in a Space: a flat []uint64 arena with a bump
// allocation pointer. A simulated pointer is an Addr packing a space id and
// a word offset. The Go collector never traces simulated object graphs.
package mem

import "fmt"

// WordSize is the size in bytes of one simulated machine word.
// The paper's machine is a 64-bit Alpha, so one word is 8 bytes.
const WordSize = 8

// Addr is a simulated pointer: a space id in the high bits and a word
// offset in the low bits. The zero Addr is the simulated nil.
type Addr uint64

const (
	offsetBits = 40
	offsetMask = (Addr(1) << offsetBits) - 1

	// MaxSpaceWords is the largest number of words a single space can hold.
	MaxSpaceWords = 1 << offsetBits
)

// Nil is the simulated null pointer.
const Nil Addr = 0

// MakeAddr packs a space id and a word offset into an Addr.
func MakeAddr(space SpaceID, offset uint64) Addr {
	return Addr(space)<<offsetBits | Addr(offset)
}

// Space returns the space id component of the address.
func (a Addr) Space() SpaceID { return SpaceID(a >> offsetBits) }

// Offset returns the word offset component of the address.
func (a Addr) Offset() uint64 { return uint64(a & offsetMask) }

// Add returns the address delta words past a, staying within the same
// space. Overflowing the offset field would silently carry into the space
// id — a wrapped Addr aliases an unrelated space and corrupts the heap
// undetectably — so Add panics instead of wrapping.
func (a Addr) Add(delta uint64) Addr {
	if uint64(a&offsetMask)+delta > uint64(offsetMask) {
		panic(fmt.Sprintf("mem: Addr.Add(%d) overflows offset of %v", delta, a))
	}
	return a + Addr(delta)
}

// IsNil reports whether a is the simulated null pointer.
func (a Addr) IsNil() bool { return a == Nil }

// String renders the address as space:offset for diagnostics.
func (a Addr) String() string {
	if a.IsNil() {
		return "nil"
	}
	return fmt.Sprintf("%d:%#x", a.Space(), a.Offset())
}

// SpaceID names a Space within a Heap. Space id 0 is reserved so that
// Addr(0) can serve as nil.
type SpaceID uint32

// Space is one contiguous arena with bump allocation. Offsets start at 1:
// offset 0 of space 0 would collide with the nil address, and keeping the
// rule uniform between spaces simplifies the math.
//
// Allocations hand out zeroed words. A freshly made arena is already
// zero, so Alloc only spends a memclr on words below dirtyTo — the
// high-water mark of words handed out before the last Reset. On the
// first pass through a fresh arena (the common case: every to-space and
// every post-GC nursery refill up to the previous high-water mark) the
// zeroing loop does not run at all.
type Space struct {
	id      SpaceID
	words   []uint64
	top     uint64 // next free word offset; starts at 1
	limit   uint64 // capacity in words (len(words))
	dirtyTo uint64 // words below this offset may hold stale data
	// recycled marks arenas taken from the heap's pool: their storage
	// beyond the current slice (up to cap) may hold a previous owner's
	// data, so in-place growth must extend the dirty mark over the tail.
	// A fresh arena's tail is still zero and stays lazily clean.
	recycled bool
}

// eagerZero restores the reference behaviour of zeroing every reserved
// word on every allocation; see core.SetReferenceKernels.
var eagerZero bool

// SetEagerZeroing toggles the reference eager-zeroing allocation path.
// Benchmark/test plumbing only; must not be flipped while allocations are
// in flight.
func SetEagerZeroing(on bool) { eagerZero = on }

// NewSpace creates a space holding capacity words of usable storage.
func NewSpace(id SpaceID, capacity uint64) *Space {
	if capacity+1 > MaxSpaceWords {
		panic(fmt.Sprintf("mem: space %d capacity %d exceeds max", id, capacity))
	}
	return &Space{
		id:      id,
		words:   make([]uint64, capacity+1),
		top:     1,
		limit:   capacity + 1,
		dirtyTo: 1, // a fresh arena is all-zero
	}
}

// ID returns the space's id.
func (s *Space) ID() SpaceID { return s.id }

// Alloc reserves n words and returns the address of the first, or false if
// the space is full. The reserved words are zeroed (arenas are reused),
// but only the slice below the dirty high-water mark needs the memclr —
// words never handed out since the arena was made are still zero.
func (s *Space) Alloc(n uint64) (Addr, bool) {
	if s.top+n > s.limit {
		return Nil, false
	}
	base := s.top
	s.top += n
	if base < s.dirtyTo || eagerZero {
		end := s.top
		if end > s.dirtyTo && !eagerZero {
			end = s.dirtyTo
		}
		clear(s.words[base:end])
	}
	return MakeAddr(s.id, base), true
}

// AllocUnzeroed allocates n words without scrubbing previously-used
// memory. It exists for the evacuator's copy destinations, which are
// fully overwritten by the bulk copy before any read — zeroing them
// first would touch every word twice. Callers must write all n words.
func (s *Space) AllocUnzeroed(n uint64) (Addr, bool) {
	if s.top+n > s.limit {
		return Nil, false
	}
	base := s.top
	s.top += n
	return MakeAddr(s.id, base), true
}

// Used returns the number of words allocated so far.
func (s *Space) Used() uint64 { return s.top - 1 }

// Capacity returns the usable capacity of the space in words.
func (s *Space) Capacity() uint64 { return s.limit - 1 }

// Free returns the number of words still available.
func (s *Space) Free() uint64 { return s.limit - s.top }

// Raw exposes the arena's backing words for kernel hot paths (the Cheney
// scan reads headers and rewrites pointer fields without a per-word space
// lookup). The slice aliases live storage: callers must not retain it
// across a Reset, Replace, or Grow of the space.
func (s *Space) Raw() []uint64 { return s.words }

// Reset discards all allocations, returning the space to empty. The
// abandoned words are not scrubbed here; the dirty high-water mark makes
// the next pass of allocations zero them lazily.
func (s *Space) Reset() {
	if s.top > s.dirtyTo {
		s.dirtyTo = s.top
	}
	s.top = 1
}

// Contains reports whether a points into this space's allocated region.
func (s *Space) Contains(a Addr) bool {
	return a.Space() == s.id && a.Offset() >= 1 && a.Offset() < s.top
}

// Heap is the collection of spaces making up the simulated address space.
// Space ids index into the spaces slice; id 0 is always nil (reserved).
type Heap struct {
	spaces []*Space
	// arenaPool recycles the backing storage of replaced, grown, and freed
	// spaces. Semispace flips and tenured rebuilds would otherwise allocate
	// (and have the Go runtime zero) a multi-megabyte arena per collection;
	// with the pool, steady-state resizes reuse storage and rely on the
	// dirty high-water mark for lazy scrubbing. Disabled under eager
	// zeroing, which restores the reference fresh-arena behaviour.
	arenaPool [][]uint64
}

// maxPooledArenas bounds the retained storage; beyond it, released arenas
// go back to the Go allocator.
const maxPooledArenas = 8

// newSpace builds a space under id, reusing a pooled arena when one is
// large enough. A recycled arena is stale end to end, so its dirty mark
// covers the whole extent.
func (h *Heap) newSpace(id SpaceID, capacity uint64) *Space {
	if capacity+1 > MaxSpaceWords {
		panic(fmt.Sprintf("mem: space %d capacity %d exceeds max", id, capacity))
	}
	need := capacity + 1
	if !eagerZero {
		// Best fit: the smallest pooled arena that is large enough, so a
		// small request does not burn an arena a big resize needs next.
		best := -1
		for i, a := range h.arenaPool {
			if uint64(cap(a)) >= need && (best < 0 || cap(a) < cap(h.arenaPool[best])) {
				best = i
			}
		}
		if best >= 0 {
			a := h.arenaPool[best]
			h.arenaPool[best] = h.arenaPool[len(h.arenaPool)-1]
			h.arenaPool = h.arenaPool[:len(h.arenaPool)-1]
			return &Space{id: id, words: a[:need], top: 1, limit: need, dirtyTo: need, recycled: true}
		}
		// Fresh arenas take power-of-two capacity headroom: a heap whose
		// live set (and with it every resize request) grows monotonically
		// would otherwise defeat both the pool and in-place growth, paying
		// a full allocate-zero-copy cycle per collection.
		return &Space{
			id:      id,
			words:   make([]uint64, need, arenaCap(need)),
			top:     1,
			limit:   need,
			dirtyTo: 1,
		}
	}
	return NewSpace(id, capacity)
}

// arenaCap rounds a fresh arena request up to the next power of two (at
// least 4K words), bounding slack at 2x.
func arenaCap(need uint64) uint64 {
	c := uint64(4096)
	for c < need {
		c <<= 1
	}
	if c > MaxSpaceWords {
		c = MaxSpaceWords
	}
	return c
}

// releaseArena parks a retired space's storage for reuse. A full pool
// evicts its smallest arena when the incoming one is larger — big arenas
// (the semispace and tenured resizes) are the expensive ones to refetch.
func (h *Heap) releaseArena(s *Space) {
	if s == nil || eagerZero {
		return
	}
	if len(h.arenaPool) < maxPooledArenas {
		h.arenaPool = append(h.arenaPool, s.words)
		return
	}
	small := 0
	for i := 1; i < len(h.arenaPool); i++ {
		if cap(h.arenaPool[i]) < cap(h.arenaPool[small]) {
			small = i
		}
	}
	if cap(h.arenaPool[small]) < cap(s.words) {
		h.arenaPool[small] = s.words
	}
}

// NewHeap creates an empty heap with the reserved nil space slot.
func NewHeap() *Heap {
	return &Heap{spaces: make([]*Space, 1, 8)}
}

// AddSpace creates and registers a new space of the given capacity.
func (h *Heap) AddSpace(capacity uint64) *Space {
	id := SpaceID(len(h.spaces))
	s := h.newSpace(id, capacity)
	h.spaces = append(h.spaces, s)
	return s
}

// ReplaceSpace swaps in a fresh space of the given capacity under an
// existing id, discarding the old contents. Collectors use this to resize
// semispaces between collections.
func (h *Heap) ReplaceSpace(id SpaceID, capacity uint64) *Space {
	if int(id) <= 0 || int(id) >= len(h.spaces) {
		panic(fmt.Sprintf("mem: ReplaceSpace of unknown space %d", id))
	}
	h.releaseArena(h.spaces[id])
	s := h.newSpace(id, capacity)
	h.spaces[id] = s
	return s
}

// GrowthError is the panic value for space-capacity failures: a resize
// below the used extent, or a collector's emergency growth that still
// cannot fit a request. It always carries the space id, the words in
// use, and the requested words as fields, so failure handlers and
// regression tests inspect the values instead of parsing the message.
type GrowthError struct {
	Op        string // the failing operation, e.g. "GrowSpace below used"
	Space     SpaceID
	Used      uint64
	Requested uint64
}

func (e GrowthError) Error() string {
	return fmt.Sprintf("mem: %s: space %d: used %d words, requested %d words",
		e.Op, e.Space, e.Used, e.Requested)
}

// GrowSpace resizes the space with the given id to the new capacity,
// preserving its contents and allocation pointer (offsets are stable, so
// all addresses into the space remain valid). Shrinking below the used
// size panics with a GrowthError. Collectors use this to apply
// liveness-ratio resizing policies between collections without moving
// objects.
func (h *Heap) GrowSpace(id SpaceID, capacity uint64) *Space {
	old := h.Space(id)
	if capacity < old.Used() {
		panic(GrowthError{Op: "GrowSpace below used", Space: id, Used: old.Used(), Requested: capacity})
	}
	need := capacity + 1
	if !eagerZero && uint64(cap(old.words)) >= need {
		// The arena is already big enough: resize in place, no copy. A
		// recycled arena's tail past the old extent is a previous owner's
		// stale storage, so the dirty mark moves out over the whole new
		// extent; a fresh arena's tail is still zero.
		old.words = old.words[:need]
		old.limit = need
		if old.recycled {
			old.dirtyTo = need
		} else if old.dirtyTo > need {
			old.dirtyTo = need
		}
		return old
	}
	s := h.newSpace(id, capacity)
	copy(s.words, old.words[:old.top])
	s.top = old.top
	h.releaseArena(old)
	h.spaces[id] = s
	return s
}

// FreeSpace releases the space with the given id. Ids are not reused, so a
// dangling simulated pointer into a freed space faults loudly (nil panic)
// instead of silently reading reused memory.
func (h *Heap) FreeSpace(id SpaceID) {
	if int(id) <= 0 || int(id) >= len(h.spaces) {
		panic(fmt.Sprintf("mem: FreeSpace of unknown space %d", id))
	}
	h.releaseArena(h.spaces[id])
	h.spaces[id] = nil
}

// Space returns the space with the given id.
func (h *Heap) Space(id SpaceID) *Space {
	return h.spaces[id]
}

// NumSpaces returns the number of space ids ever issued, including the
// reserved nil slot and freed spaces. Valid ids are 1..NumSpaces()-1.
func (h *Heap) NumSpaces() int { return len(h.spaces) }

// SpaceOf returns the space an address points into.
func (h *Heap) SpaceOf(a Addr) *Space {
	id := a.Space()
	if int(id) <= 0 || int(id) >= len(h.spaces) {
		panic(fmt.Sprintf("mem: address %v has no space", a))
	}
	return h.spaces[id]
}

// Load reads the word at address a.
func (h *Heap) Load(a Addr) uint64 {
	return h.spaces[a.Space()].words[a.Offset()]
}

// Store writes the word at address a.
func (h *Heap) Store(a Addr, v uint64) {
	h.spaces[a.Space()].words[a.Offset()] = v
}

// Words returns a mutable view of n words starting at a. The view aliases
// arena storage; callers must not retain it across a space Reset or Replace.
func (h *Heap) Words(a Addr, n uint64) []uint64 {
	s := h.spaces[a.Space()]
	off := a.Offset()
	return s.words[off : off+n]
}

// Copy copies n words from src to dst, which may be in different spaces.
func (h *Heap) Copy(dst, src Addr, n uint64) {
	copy(h.Words(dst, n), h.Words(src, n))
}
