package gcsim

import (
	"errors"
	"fmt"
	"strings"
)

// Validate checks the configuration for option combinations the selected
// collector would silently ignore. Historically NewRuntime dropped such
// options on the floor — a Config{Collector: Semispace, CardTable: true}
// ran the plain semispace collector and the caller's barrier "ablation"
// measured nothing. Every mismatch is now an error naming the field and
// the collector choice it requires; NewRuntime panics on an invalid
// configuration rather than running a quietly different experiment.
func (c Config) Validate() error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	if c.Collector < Generational || c.Collector > GenerationalFull {
		bad("unknown Collector %d", c.Collector)
		return errors.Join(errs...)
	}

	if c.Collector == Semispace {
		// The semispace baseline has no nursery, no write barrier, no
		// promotion, and no pretenured region: every generational knob is
		// meaningless rather than defaulted.
		if c.NurseryWords != 0 {
			bad("NurseryWords is set but the Semispace collector has no nursery")
		}
		if c.CardTable {
			bad("CardTable is set but the Semispace collector has no write barrier")
		}
		if c.AgingMinors != 0 {
			bad("AgingMinors is set but the Semispace collector has no promotion")
		}
		if c.Pretenure != nil {
			bad("Pretenure is set but the Semispace collector has no tenured generation (use GenerationalFull)")
		}
		if c.ScanElision {
			bad("ScanElision is set but the Semispace collector has no pretenured region")
		}
		if c.OldCollector != OldCopy {
			bad("OldCollector %v is set but the Semispace collector has no old generation", c.OldCollector)
		}
	}
	if c.OldCollector > OldMarkCompact {
		bad("unknown OldCollector %d (want OldCopy, OldMarkSweep, or OldMarkCompact)", c.OldCollector)
	}

	// MarkerN selects the §5 stack-marker spacing. Plain Generational
	// deliberately runs without markers (it is the paper's "before"
	// configuration), so a spacing there would be ignored.
	if c.MarkerN != 0 && c.Collector == Generational {
		bad("MarkerN is set but Collector Generational scans the full stack; use GenerationalMarkers, GenerationalFull, or Semispace")
	}
	if c.MarkerN < 0 {
		bad("MarkerN %d is negative", c.MarkerN)
	}
	if c.AgingMinors < 0 {
		bad("AgingMinors %d is negative", c.AgingMinors)
	}
	if c.Threads < 0 {
		bad("Threads %d is negative", c.Threads)
	}
	if c.GCWorkers < 0 {
		bad("GCWorkers %d is negative", c.GCWorkers)
	}

	switch c.Collector {
	case GenerationalFull:
		if c.Pretenure == nil {
			bad("Collector GenerationalFull requires a Pretenure policy (see PolicyFromProfile); use GenerationalMarkers for markers without pretenuring")
		}
	default:
		if c.Pretenure != nil && c.Collector != Semispace {
			bad("Pretenure policy is set but Collector %v ignores it; use GenerationalFull", c.Collector)
		}
		if c.ScanElision && c.Collector != Semispace {
			bad("ScanElision is set but Collector %v has no pretenured region to elide; use GenerationalFull", c.Collector)
		}
	}

	if c.SiteNames != nil && !c.Profile {
		bad("SiteNames is set but Profile is off, so no report would ever use the names")
	}

	return errors.Join(errs...)
}

// String names the collector choice in error messages.
func (c CollectorChoice) String() string {
	switch c {
	case Generational:
		return "Generational"
	case Semispace:
		return "Semispace"
	case GenerationalMarkers:
		return "GenerationalMarkers"
	case GenerationalFull:
		return "GenerationalFull"
	}
	return fmt.Sprintf("CollectorChoice(%d)", int(c))
}

// mustValidate panics with every validation error on one line per
// problem, so a misconfigured experiment fails at construction with the
// full list instead of at the first field someone happens to notice.
func mustValidate(c Config) {
	if err := c.Validate(); err != nil {
		msg := strings.ReplaceAll(err.Error(), "\n", "\n  ")
		panic("gcsim: invalid Config:\n  " + msg)
	}
}
