// Package gcsim is the public API of tilgc: a simulated-runtime
// reproduction of "Generational Stack Collection and Profile-Driven
// Pretenuring" (Cheng, Harper, Lee — PLDI 1998).
//
// The package exposes three layers:
//
//   - Runtime construction: NewRuntime builds a simulated mutator runtime
//     (arena heap, activation-record stack with trace tables, register
//     file, write barrier) paired with one of the paper's collectors,
//     configured through Config. User programs drive it through the
//     slot-oriented Mutator API.
//
//   - Benchmarks: the paper's eleven SML benchmark programs, runnable by
//     name under any collector configuration with deterministic
//     self-checks.
//
//   - Experiments: the harness regenerating every table and figure of the
//     paper's evaluation (Tables 2-7, Figure 2) plus the §7.2 and §4
//     extensions.
//
// A minimal program:
//
//	rt := gcsim.NewRuntime(gcsim.Config{Collector: gcsim.Generational})
//	m := rt.Mutator()
//	frame := m.PtrFrame("main", 2)
//	m.Call(frame, func() {
//	    m.ConsInt(1, 42, 1, 1) // cons 42 onto the nil list in slot 1
//	})
package gcsim

import (
	"fmt"
	"io"

	"tilgc/internal/adapt"
	"tilgc/internal/core"
	"tilgc/internal/costmodel"
	"tilgc/internal/harness"
	"tilgc/internal/obj"
	"tilgc/internal/prof"
	"tilgc/internal/rt"
	"tilgc/internal/workload"
)

// CollectorChoice selects a collector configuration.
type CollectorChoice int

const (
	// Generational (the zero value, and the default) is the
	// two-generation collector with immediate promotion and a
	// sequential-store-buffer write barrier (§2.1).
	Generational CollectorChoice = iota
	// Semispace is the Cheney-scan semispace baseline (§2.1).
	Semispace
	// GenerationalMarkers adds generational stack collection (§5).
	GenerationalMarkers
	// GenerationalFull adds profile-driven pretenuring on top (§6); a
	// pretenuring policy must be supplied (see Profile / PolicyFromProfile).
	GenerationalFull
)

// Config configures a Runtime.
type Config struct {
	// Collector picks the collector; default Generational.
	Collector CollectorChoice
	// BudgetWords caps total collector memory in 8-byte words
	// (0 = 512Mi words, effectively unconstrained).
	BudgetWords uint64
	// NurseryWords sizes the young generation (default 65536 = 512KB).
	NurseryWords uint64
	// MarkerN is the stack-marker spacing n (default 25).
	MarkerN int
	// Pretenure supplies the per-site pretenuring decisions for
	// GenerationalFull.
	Pretenure *PretenurePolicy
	// ScanElision enables the §7.2 pretenured-region scan elision.
	ScanElision bool
	// CardTable replaces the SSB with card marking (§4 alternative).
	CardTable bool
	// AgingMinors disables immediate promotion: nursery survivors age
	// through an intermediate space for this many further minor
	// collections before tenuring (§7.2 discussion). Zero = the paper's
	// immediate promotion.
	AgingMinors int
	// Profile attaches a heap profiler (Figure 2 data; slows the run).
	Profile bool
	// SiteNames documents allocation sites in profile reports.
	SiteNames map[SiteID]string
	// Threads runs the mutator over this many simulated threads: thread 0
	// wraps the primary stack and the rest spawn with empty stacks. The
	// scheduler is cooperative — programs switch with
	// Mutator.SetThread — so 0 or 1 is the single-thread runtime,
	// byte-identical to builds without thread support.
	Threads int
	// GCWorkers enables the deterministic parallel copying phases with
	// this many simulated workers: heap images stay byte-identical at
	// every worker count while pause wall time shrinks to the critical
	// path (max-of-workers). 0 or 1 is the serial collector.
	GCWorkers int
	// DeferMajor bounds individual pauses in the generational collectors:
	// an over-threshold major collection runs as its own pause at the next
	// GC trigger instead of piggybacking on the minor that crossed the
	// threshold. Same collections, same work — only the pause boundaries
	// move. Ignored by the semispace collector (every collection is full).
	DeferMajor bool
	// OldCollector selects the tenured-generation algorithm for the
	// generational collectors: OldCopy (the zero value — the paper's
	// copying old generation), OldMarkSweep (non-moving, mark bitmap +
	// size-segregated free lists), or OldMarkCompact (mark bitmap + a
	// sliding compaction preserving allocation order). Client-visible
	// results are byte-identical across all three; only GC cost, pause
	// shape, and heap footprint differ. Combining it with the Semispace
	// collector is a validation error: that baseline has no old
	// generation.
	OldCollector OldGenCollector
}

// OldGenCollector selects the tenured-generation algorithm (see
// Config.OldCollector).
type OldGenCollector = core.OldCollector

// Old-generation collector choices.
const (
	// OldCopy is the paper's copying old generation (the default).
	OldCopy = core.OldCopy
	// OldMarkSweep is the non-moving bitmap mark-sweep old generation.
	OldMarkSweep = core.OldMarkSweep
	// OldMarkCompact is the sliding bitmap mark-compact old generation.
	OldMarkCompact = core.OldMarkCompact
)

// ParseOldCollector resolves an old-generation collector name ("copy",
// "marksweep", "markcompact"; "" means copy) to its value, reporting
// whether the name was recognized.
func ParseOldCollector(s string) (OldGenCollector, bool) {
	return core.ParseOldCollector(s)
}

// Re-exported building blocks.
type (
	// Mutator is the slot-oriented mutator API programs are written in.
	Mutator = workload.Mutator
	// PretenurePolicy maps allocation sites to pretenure decisions.
	PretenurePolicy = core.PretenurePolicy
	// PretenureDecision configures one pretenured site.
	PretenureDecision = core.PretenureDecision
	// SiteID identifies an allocation site.
	SiteID = obj.SiteID
	// Profiler is the heap profiler (per-site lifetime statistics).
	Profiler = prof.Profiler
	// ReportOptions controls Figure 2-style profile report rendering.
	ReportOptions = prof.ReportOptions
	// GCStats is the collector statistics block.
	GCStats = core.GCStats
	// Scale scales benchmark workloads relative to the paper's runs.
	Scale = workload.Scale
	// FrameInfo is a registered activation-record layout.
	FrameInfo = rt.FrameInfo
	// SlotTrace describes a stack slot or register to the collector.
	SlotTrace = rt.SlotTrace
)

// Trace constructors, re-exported for building frame layouts.
var (
	// NP marks a slot as a non-pointer.
	NP = rt.NP
	// PTR marks a slot as a statically-known pointer.
	PTR = rt.PTR
	// SAVE marks a slot as the spill of a caller's callee-save register.
	SAVE = rt.SAVE
	// COMPSLOT marks a slot whose pointer-ness is computed from a runtime
	// type in another slot.
	COMPSLOT = rt.COMPSLOT
	// COMPREG marks a slot whose pointer-ness is computed from a runtime
	// type in a register (top frame only).
	COMPREG = rt.COMPREG
)

// DefaultReportOptions mirrors the paper's Figure 2 report settings.
func DefaultReportOptions(title string) ReportOptions {
	return prof.DefaultReportOptions(title)
}

// NewPretenurePolicy builds a policy from explicit decisions.
func NewPretenurePolicy(sites map[SiteID]PretenureDecision) *PretenurePolicy {
	return core.NewPretenurePolicy(sites)
}

// Runtime is a simulated runtime plus collector.
type Runtime struct {
	cfg      Config
	meter    *costmodel.Meter
	table    *rt.TraceTable
	stack    *rt.Stack
	col      core.Collector
	mutator  *workload.Mutator
	profiler *prof.Profiler
}

// NewRuntime builds a runtime per cfg. The configuration must be valid
// (see Config.Validate): option combinations the selected collector would
// ignore panic here instead of silently running a different experiment.
func NewRuntime(cfg Config) *Runtime {
	mustValidate(cfg)
	meter := costmodel.NewMeter()
	table := rt.NewTraceTable()
	stack := rt.NewStack(table, meter)
	var profiler *prof.Profiler
	var hook core.Profiler
	if cfg.Profile {
		profiler = prof.New(cfg.SiteNames)
		hook = profiler
	}
	budget := cfg.BudgetWords
	if budget == 0 {
		budget = 512 << 20
	}
	var col core.Collector
	var attachThreads func(*rt.ThreadSet)
	switch cfg.Collector {
	case Semispace:
		// MarkerN passes through: §5's stack markers apply to the semispace
		// collector too (the cfg used to pin this to 0, silently ignoring a
		// requested spacing — one of the gaps Validate now closes by wiring
		// rather than rejecting, since the core supports it).
		s := core.NewSemispace(stack, meter, hook, core.SemispaceConfig{
			BudgetWords: budget,
			MarkerN:     cfg.MarkerN,
			Workers:     cfg.GCWorkers,
		})
		col = s
		attachThreads = s.AttachThreads
	default:
		gcfg := core.GenConfig{
			BudgetWords:  budget,
			NurseryWords: cfg.NurseryWords,
			UseCardTable: cfg.CardTable,
			AgingMinors:  cfg.AgingMinors,
			Workers:      cfg.GCWorkers,
			DeferMajor:   cfg.DeferMajor,
			OldCollector: cfg.OldCollector,
		}
		if cfg.Collector >= GenerationalMarkers {
			gcfg.MarkerN = cfg.MarkerN
			if gcfg.MarkerN == 0 {
				gcfg.MarkerN = 25
			}
		}
		if cfg.Collector == GenerationalFull {
			gcfg.Pretenure = cfg.Pretenure
			gcfg.ScanElision = cfg.ScanElision
		}
		g := core.NewGenerational(stack, meter, hook, gcfg)
		col = g
		attachThreads = g.AttachThreads
	}
	// The thread set exists only for T > 1, so single-thread runtimes run
	// the exact pre-thread code paths.
	var threads *rt.ThreadSet
	if cfg.Threads > 1 {
		threads = rt.NewThreadSet(stack, meter)
		attachThreads(threads)
		for i := 1; i < cfg.Threads; i++ {
			threads.Spawn()
		}
	}
	r := &Runtime{
		cfg:      cfg,
		meter:    meter,
		table:    table,
		stack:    stack,
		col:      col,
		profiler: profiler,
	}
	r.mutator = workload.NewMutator(col, stack, table, meter)
	r.mutator.Threads = threads
	return r
}

// Mutator returns the mutator API for writing programs against this
// runtime.
func (r *Runtime) Mutator() *Mutator { return r.mutator }

// Collect forces a collection (major on generational collectors when
// major is true).
func (r *Runtime) Collect(major bool) { r.col.Collect(major) }

// Stats returns collector statistics.
func (r *Runtime) Stats() *GCStats { return r.col.Stats() }

// CollectorName returns the active collector configuration's name.
func (r *Runtime) CollectorName() string { return r.col.Name() }

// ClientSeconds returns mutator time in simulated seconds.
func (r *Runtime) ClientSeconds() float64 {
	return r.meter.Get(costmodel.Client).Seconds()
}

// GCSeconds returns collector time in simulated seconds.
func (r *Runtime) GCSeconds() float64 { return r.meter.GC().Seconds() }

// GCStackSeconds returns the stack-root-processing share of GC time.
func (r *Runtime) GCStackSeconds() float64 {
	return r.meter.Get(costmodel.GCStack).Seconds()
}

// GCCopySeconds returns the heap scan/copy share of GC time.
func (r *Runtime) GCCopySeconds() float64 {
	return r.meter.Get(costmodel.GCCopy).Seconds()
}

// Profiler returns the heap profiler, or nil when profiling is off.
// Call Finalize on it after the program completes.
func (r *Runtime) Profiler() *Profiler { return r.profiler }

// PolicyFromProfile derives the paper's pretenuring policy from a
// finalized profile: every site whose old% is at least cutoffPct (the
// paper uses 80) with at least minObjects allocations is pretenured.
func PolicyFromProfile(p *Profiler, cutoffPct float64, minObjects uint64) *PretenurePolicy {
	return p.Policy(cutoffPct, minObjects)
}

// ---- Benchmarks -------------------------------------------------------------

// Benchmarks returns the names of the paper's benchmark programs in table
// order.
func Benchmarks() []string {
	out := make([]string, len(harness.PaperOrder))
	copy(out, harness.PaperOrder)
	return out
}

// BenchmarkInfo describes a benchmark program.
type BenchmarkInfo struct {
	Name        string
	Description string
	Sites       map[SiteID]string
}

// Describe returns a benchmark's metadata.
func Describe(name string) (BenchmarkInfo, error) {
	w, err := workload.Get(name)
	if err != nil {
		return BenchmarkInfo{}, err
	}
	return BenchmarkInfo{Name: w.Name(), Description: w.Description(), Sites: w.Sites()}, nil
}

// RunBenchmark executes a named benchmark on r and returns its
// deterministic self-check value.
func (r *Runtime) RunBenchmark(name string, scale Scale) (uint64, error) {
	w, err := workload.Get(name)
	if err != nil {
		return 0, err
	}
	res := w.Run(r.mutator, scale)
	if r.profiler != nil {
		// One final collection so objects allocated near the end get a
		// survival observation before end-of-run accounting.
		r.col.Collect(false)
		r.profiler.Finalize()
	}
	return res.Check, nil
}

// ---- Experiments ------------------------------------------------------------

// RunOptions configures experiment execution: worker-pool parallelism
// and the per-run progress hook. The zero value runs with one worker per
// CPU and no progress events. Whatever the parallelism, experiment
// output is byte-identical to the serial path (see harness.RunAll).
type RunOptions = harness.Options

// RunEvent is one per-run progress notification (see RunOptions.Events).
type RunEvent = harness.Event

// RunEvent kinds.
const (
	EventRunStarted  = harness.EventRunStarted
	EventRunFinished = harness.EventRunFinished
)

// Experiment regenerates one of the paper's tables or figures, writing
// the rendered result to w. Valid names: "table1" ... "table7",
// "figure2", "elide", "barrier", "markersweep", "adapt", "slo",
// "oldgen".
func Experiment(w io.Writer, name string, scale Scale) error {
	return ExperimentOpts(w, name, scale, RunOptions{})
}

// ExperimentOpts is Experiment with explicit execution options.
func ExperimentOpts(w io.Writer, name string, scale Scale, opts RunOptions) error {
	switch name {
	case "table1":
		return harness.Table1(w)
	case "table2":
		return harness.Table2(w, scale, opts)
	case "table3":
		return harness.Table3(w, scale, opts)
	case "table4":
		return harness.Table4(w, scale, opts)
	case "table5":
		return harness.Table5(w, scale, opts)
	case "table6":
		return harness.Table6(w, scale, opts)
	case "table7":
		return harness.Table7(w, scale, opts)
	case "figure2":
		return harness.Figure2(w, scale, opts)
	case "elide":
		return harness.ExtensionElide(w, scale, opts)
	case "barrier":
		return harness.ExtensionBarrier(w, scale, opts)
	case "aging":
		return harness.ExtensionAging(w, scale, opts)
	case "markersweep":
		return harness.MarkerSweep(w, scale,
			[]string{"Knuth-Bendix", "Color"}, []int{5, 10, 25, 50, 100}, opts)
	case "adapt":
		return harness.ExperimentAdapt(w, scale, opts)
	case "slo":
		return harness.ExperimentSLO(w, scale, opts)
	case "oldgen":
		return harness.ExperimentOldgen(w, scale, opts)
	}
	return fmt.Errorf("gcsim: unknown experiment %q", name)
}

// Experiments lists the valid Experiment names.
func Experiments() []string {
	return []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"table7", "figure2", "elide", "barrier", "aging", "markersweep",
		"adapt", "slo", "oldgen",
	}
}

// ---- Adaptive pretenuring ---------------------------------------------------

// Re-exported adaptive-pretenuring store types (§9). An AdaptStore is the
// schema-versioned cross-run profile store; each AdaptProfile inside it
// seeds one workload's advisor on a warm start (RunOptions.AdaptWarm).
type (
	// AdaptStore is a collection of stored advisor profiles.
	AdaptStore = adapt.Store
	// AdaptProfile is one run's stored advisor state.
	AdaptProfile = adapt.RunProfile
)

// ReadAdaptStore decodes a profile store from its JSONL serialization,
// rejecting unknown schema versions with a descriptive error.
func ReadAdaptStore(r io.Reader) (*AdaptStore, error) { return adapt.ReadJSONL(r) }

// AdaptProfileFromProfiler converts a finalized offline heap profile into
// a warm-startable advisor profile: sites whose old% meets cutoffPct with
// at least minObjects allocations are seeded as pretenured (the paper's
// §6 rule), and every profiled site contributes its survival evidence.
func AdaptProfileFromProfiler(p *Profiler, label, workload string, cutoffPct float64, minObjects uint64) *AdaptProfile {
	return adapt.FromProfile(p, label, workload, cutoffPct, minObjects)
}

// DefaultScale is the scale used by the command-line tools: large enough
// to reproduce every effect, small enough to run a full table in minutes.
var DefaultScale = workload.DefaultScale

// WriteProfile runs the named benchmark with profiling and writes its
// Figure 2-style heap-profile report.
func WriteProfile(w io.Writer, name string, scale Scale) error {
	return harness.Profiles(w, scale, []string{name}, RunOptions{})
}
