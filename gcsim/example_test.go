package gcsim_test

import (
	"fmt"

	"tilgc/gcsim"
)

// Build a linked list through the slot-oriented mutator API and let the
// generational collector manage it.
func Example() {
	rt := gcsim.NewRuntime(gcsim.Config{
		Collector:    gcsim.Generational,
		NurseryWords: 1024,
	})
	m := rt.Mutator()
	frame := m.PtrFrame("main", 2)
	m.Call(frame, func() {
		for i := uint64(0); i < 5000; i++ {
			m.ConsInt(1, i, 1, 1)
		}
		fmt.Println("cells:", m.ListLen(1, 2))
	})
	fmt.Println("collected at least once:", rt.Stats().NumGC > 0)
	// Output:
	// cells: 5000
	// collected at least once: true
}

// Run one of the paper's benchmarks under two collector configurations
// and confirm they compute the same answer.
func Example_differential() {
	scale := gcsim.Scale{Repeat: 0.0001}
	a := gcsim.NewRuntime(gcsim.Config{Collector: gcsim.Semispace})
	ca, _ := a.RunBenchmark("Nqueen", scale)
	b := gcsim.NewRuntime(gcsim.Config{Collector: gcsim.GenerationalMarkers})
	cb, _ := b.RunBenchmark("Nqueen", scale)
	fmt.Println("checks agree:", ca == cb)
	fmt.Println("solutions:", ca/1000) // one run: check = count*1000 + positional hash
	// Output:
	// checks agree: true
	// solutions: 724
}

// Derive a pretenuring policy from a heap profile (the §6 pipeline).
func ExamplePolicyFromProfile() {
	profiled := gcsim.NewRuntime(gcsim.Config{
		Profile:      true,
		NurseryWords: 2048,
	})
	if _, err := profiled.RunBenchmark("Nqueen", gcsim.Scale{Repeat: 0.004}); err != nil {
		panic(err)
	}
	policy := gcsim.PolicyFromProfile(profiled.Profiler(), 80, 32)
	fmt.Println("pretenured sites:", policy.Len())
	// Output:
	// pretenured sites: 2
}

// Frames can declare polymorphic slots whose pointer-ness the collector
// resolves from a runtime type value (TIL's COMPUTE traces).
func ExampleCOMPSLOT() {
	rt := gcsim.NewRuntime(gcsim.Config{NurseryWords: 512})
	m := rt.Mutator()
	poly := m.Frame("poly",
		gcsim.NP(),        // slot 1: the runtime type value
		gcsim.COMPSLOT(1), // slot 2: traced only when slot 1 says pointer
	)
	m.Call(poly, func() {
		m.SetSlot(1, 1) // TypePointer
		m.AllocRecord(9, 1, 0, 2)
		m.InitIntField(2, 0, 42)
		for i := 0; i < 400; i++ {
			m.AllocRecord(8, 2, 0, 1) // garbage forcing collections
			m.SetSlot(1, 1)           // slot 1 is scratch here; keep the type
		}
		fmt.Println("payload survived:", m.LoadFieldInt(2, 0))
	})
	// Output:
	// payload survived: 42
}
