package gcsim

import (
	"strings"
	"testing"
)

func TestNewRuntimeDefaults(t *testing.T) {
	r := NewRuntime(Config{})
	if r.CollectorName() != "generational" {
		t.Fatalf("default collector = %q", r.CollectorName())
	}
	if r.Mutator() == nil {
		t.Fatal("no mutator")
	}
}

func TestQuickstartPattern(t *testing.T) {
	r := NewRuntime(Config{Collector: Generational, NurseryWords: 512})
	m := r.Mutator()
	frame := m.PtrFrame("main", 2)
	m.Call(frame, func() {
		for i := uint64(0); i < 2000; i++ {
			m.ConsInt(1, i, 1, 1)
		}
		n := m.ListLen(1, 2)
		if n != 2000 {
			t.Fatalf("list length = %d", n)
		}
	})
	if r.Stats().NumGC == 0 {
		t.Fatal("no collections despite tiny nursery")
	}
	if r.GCSeconds() <= 0 || r.ClientSeconds() <= 0 {
		t.Fatal("no time charged")
	}
}

func TestAllCollectorChoicesRunNqueen(t *testing.T) {
	scale := Scale{Repeat: 0.0001}
	var ref uint64
	choices := []CollectorChoice{Semispace, Generational, GenerationalMarkers, GenerationalFull}
	for i, c := range choices {
		cfg := Config{Collector: c}
		if c != Semispace {
			// Validate rejects generational knobs on the semispace baseline
			// (it used to ignore them silently).
			cfg.NurseryWords = 2048
		}
		if c == GenerationalFull {
			cfg.Pretenure = NewPretenurePolicy(map[SiteID]PretenureDecision{801: {}})
		}
		r := NewRuntime(cfg)
		check, err := r.RunBenchmark("Nqueen", scale)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = check
		} else if check != ref {
			t.Fatalf("collector %d check %#x want %#x", c, check, ref)
		}
	}
}

func TestProfileToPolicy(t *testing.T) {
	r := NewRuntime(Config{Profile: true, NurseryWords: 2048})
	if _, err := r.RunBenchmark("Nqueen", Scale{Repeat: 0.004}); err != nil {
		t.Fatal(err)
	}
	p := r.Profiler()
	if p == nil {
		t.Fatal("profiler missing")
	}
	pol := PolicyFromProfile(p, 80, 32)
	if pol.Len() == 0 {
		t.Fatal("profile produced no pretenure sites for Nqueen")
	}
	// Re-run with the derived policy: same answer, less copying.
	base := NewRuntime(Config{NurseryWords: 2048})
	cb, _ := base.RunBenchmark("Nqueen", Scale{Repeat: 0.004})
	pre := NewRuntime(Config{Collector: GenerationalFull, Pretenure: pol, NurseryWords: 2048})
	cp, _ := pre.RunBenchmark("Nqueen", Scale{Repeat: 0.004})
	if cb != cp {
		t.Fatal("policy changed the computation")
	}
	if pre.Stats().BytesCopied >= base.Stats().BytesCopied {
		t.Fatalf("derived policy did not cut copying: %d vs %d",
			pre.Stats().BytesCopied, base.Stats().BytesCopied)
	}
}

func TestBenchmarksListing(t *testing.T) {
	names := Benchmarks()
	if len(names) != 11 {
		t.Fatalf("expected 11 benchmarks, got %d", len(names))
	}
	for _, n := range names {
		info, err := Describe(n)
		if err != nil {
			t.Fatal(err)
		}
		if info.Description == "" || len(info.Sites) == 0 {
			t.Errorf("%s metadata incomplete", n)
		}
	}
	if _, err := Describe("bogus"); err == nil {
		t.Fatal("Describe accepted unknown benchmark")
	}
}

func TestExperimentDispatch(t *testing.T) {
	var b strings.Builder
	if err := Experiment(&b, "table1", DefaultScale); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Knuth-Bendix") {
		t.Fatal("table1 output incomplete")
	}
	if err := Experiment(&b, "nope", DefaultScale); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Experiments()) < 10 {
		t.Fatal("experiment list too short")
	}
}

func TestWriteProfileOutput(t *testing.T) {
	var b strings.Builder
	if err := WriteProfile(&b, "Nqueen", Scale{Repeat: 0.001}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "heap profile end") {
		t.Fatal("profile output malformed")
	}
}

func TestTryCatchExposedViaMutator(t *testing.T) {
	r := NewRuntime(Config{})
	m := r.Mutator()
	f := m.PtrFrame("f", 1)
	caught := false
	m.Call(f, func() {
		m.TryCatch(func() {
			m.Call(f, func() {
				m.Call(f, func() {
					m.Raise()
				})
			})
		}, func() {
			caught = true
		})
	})
	if !caught {
		t.Fatal("exception not caught")
	}
}

func TestAgingConfigThroughFacade(t *testing.T) {
	base := NewRuntime(Config{NurseryWords: 2048})
	cb, err := base.RunBenchmark("Nqueen", Scale{Repeat: 0.004})
	if err != nil {
		t.Fatal(err)
	}
	aging := NewRuntime(Config{NurseryWords: 2048, AgingMinors: 3})
	ca, err := aging.RunBenchmark("Nqueen", Scale{Repeat: 0.004})
	if err != nil {
		t.Fatal(err)
	}
	if cb != ca {
		t.Fatal("aging changed the computation")
	}
	if aging.CollectorName() != "generational+aging3" {
		t.Fatalf("collector name = %q", aging.CollectorName())
	}
	// Aging copies more (tenured-bound data copied repeatedly) — the very
	// effect §7.2 says pretenuring fixes.
	if aging.Stats().BytesCopied <= base.Stats().BytesCopied {
		t.Fatalf("aging did not increase copying: %d vs %d",
			aging.Stats().BytesCopied, base.Stats().BytesCopied)
	}
}

func TestExperimentAgingListed(t *testing.T) {
	found := false
	for _, e := range Experiments() {
		if e == "aging" {
			found = true
		}
	}
	if !found {
		t.Fatal("aging experiment not listed")
	}
}

func TestTimeAccessorsAndCollect(t *testing.T) {
	r := NewRuntime(Config{Collector: GenerationalMarkers, NurseryWords: 512})
	m := r.Mutator()
	f := m.PtrFrame("f", 1)
	m.Call(f, func() {
		for i := uint64(0); i < 500; i++ {
			m.ConsInt(1, i, 1, 1)
		}
	})
	r.Collect(true)
	if r.GCSeconds() <= 0 {
		t.Fatal("no GC time")
	}
	if d := r.GCStackSeconds() + r.GCCopySeconds() - r.GCSeconds(); d > 1e-12 || d < -1e-12 {
		t.Fatalf("stack+copy != total GC time (delta %g)", d)
	}
	opts := DefaultReportOptions("x")
	if opts.CutoffPct != 80 || opts.Title != "x" {
		t.Fatalf("DefaultReportOptions = %+v", opts)
	}
}

func TestExperimentOptsParallelIdentical(t *testing.T) {
	scale := Scale{Repeat: 0.002, Depth: 0.3}
	var serial, parallel strings.Builder
	if err := ExperimentOpts(&serial, "elide", scale, RunOptions{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	events := 0
	opts := RunOptions{Parallelism: 4, Events: func(e RunEvent) { events++ }}
	if err := ExperimentOpts(&parallel, "elide", scale, opts); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("parallel output differs from serial:\n%s\nvs\n%s", serial.String(), parallel.String())
	}
	if events == 0 {
		t.Fatal("progress hook never fired")
	}
}

func TestExperimentDispatchAllNames(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	scale := Scale{Repeat: 0.001, Depth: 0.15}
	for _, name := range Experiments() {
		if name == "table3" || name == "table4" || name == "table7" {
			continue // full 11-benchmark k-sweeps; covered by the harness tests
		}
		var b strings.Builder
		if err := Experiment(&b, name, scale); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.Len() == 0 {
			t.Fatalf("%s produced no output", name)
		}
	}
}
