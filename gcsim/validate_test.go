package gcsim_test

import (
	"strings"
	"testing"

	"tilgc/gcsim"
)

// TestConfigValidate enumerates every option/collector mismatch NewRuntime
// used to ignore silently. Each case must produce an error naming the
// offending field, and every valid case must produce none — the matrix is
// the regression suite for the "quietly ran a different experiment" class
// of bug (e.g. Semispace+CardTable measured nothing, Generational+MarkerN
// never placed a marker).
func TestConfigValidate(t *testing.T) {
	pol := gcsim.NewPretenurePolicy(map[gcsim.SiteID]gcsim.PretenureDecision{1: {}})
	cases := []struct {
		name    string
		cfg     gcsim.Config
		wantErr string // substring of the error; "" means valid
	}{
		{"default", gcsim.Config{}, ""},
		{"semispace", gcsim.Config{Collector: gcsim.Semispace}, ""},
		{"semispace markers", gcsim.Config{Collector: gcsim.Semispace, MarkerN: 3}, ""},
		{"gen nursery", gcsim.Config{NurseryWords: 1024}, ""},
		{"gen cards", gcsim.Config{CardTable: true}, ""},
		{"gen aging", gcsim.Config{AgingMinors: 2}, ""},
		{"markers", gcsim.Config{Collector: gcsim.GenerationalMarkers, MarkerN: 7}, ""},
		{"markers default spacing", gcsim.Config{Collector: gcsim.GenerationalMarkers}, ""},
		{"full", gcsim.Config{Collector: gcsim.GenerationalFull, Pretenure: pol}, ""},
		{"full elision", gcsim.Config{Collector: gcsim.GenerationalFull, Pretenure: pol, ScanElision: true}, ""},
		{"profile names", gcsim.Config{Profile: true, SiteNames: map[gcsim.SiteID]string{1: "site"}}, ""},

		{"semispace nursery", gcsim.Config{Collector: gcsim.Semispace, NurseryWords: 1024}, "NurseryWords"},
		{"semispace cards", gcsim.Config{Collector: gcsim.Semispace, CardTable: true}, "CardTable"},
		{"semispace aging", gcsim.Config{Collector: gcsim.Semispace, AgingMinors: 2}, "AgingMinors"},
		{"semispace pretenure", gcsim.Config{Collector: gcsim.Semispace, Pretenure: pol}, "Pretenure"},
		{"semispace elision", gcsim.Config{Collector: gcsim.Semispace, ScanElision: true}, "ScanElision"},
		{"gen markerN", gcsim.Config{MarkerN: 25}, "MarkerN"},
		{"negative markerN", gcsim.Config{Collector: gcsim.GenerationalMarkers, MarkerN: -1}, "negative"},
		{"negative aging", gcsim.Config{AgingMinors: -2}, "negative"},
		{"gen pretenure", gcsim.Config{Pretenure: pol}, "GenerationalFull"},
		{"markers pretenure", gcsim.Config{Collector: gcsim.GenerationalMarkers, Pretenure: pol}, "GenerationalFull"},
		{"gen elision", gcsim.Config{ScanElision: true}, "ScanElision"},
		{"full no policy", gcsim.Config{Collector: gcsim.GenerationalFull}, "Pretenure policy"},
		{"names no profile", gcsim.Config{SiteNames: map[gcsim.SiteID]string{1: "site"}}, "SiteNames"},
		{"unknown collector", gcsim.Config{Collector: gcsim.CollectorChoice(99)}, "unknown Collector"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestConfigValidateJoinsAllErrors: a Config wrong in several ways reports
// every problem at once, not just the first.
func TestConfigValidateJoinsAllErrors(t *testing.T) {
	err := gcsim.Config{
		Collector:    gcsim.Semispace,
		NurseryWords: 1024,
		CardTable:    true,
		AgingMinors:  3,
	}.Validate()
	if err == nil {
		t.Fatal("Validate() = nil for a triply-invalid config")
	}
	for _, field := range []string{"NurseryWords", "CardTable", "AgingMinors"} {
		if !strings.Contains(err.Error(), field) {
			t.Errorf("joined error %q does not mention %s", err, field)
		}
	}
}

// TestNewRuntimeRejectsInvalidConfig: construction must fail loudly, not
// drop the option.
func TestNewRuntimeRejectsInvalidConfig(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewRuntime accepted Semispace+CardTable")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "CardTable") {
			t.Fatalf("panic %v does not name the offending field", r)
		}
	}()
	gcsim.NewRuntime(gcsim.Config{Collector: gcsim.Semispace, CardTable: true})
}

// TestSemispaceMarkersWired: MarkerN used to be pinned to zero for the
// semispace collector. Now it reaches the core config, so a semispace run
// with markers actually places them.
func TestSemispaceMarkersWired(t *testing.T) {
	rt := gcsim.NewRuntime(gcsim.Config{Collector: gcsim.Semispace, MarkerN: 2, BudgetWords: 1 << 20})
	m := rt.Mutator()
	f := m.PtrFrame("level", 1)
	var grow func(d int)
	grow = func(d int) {
		if d == 0 {
			rt.Collect(false)
			return
		}
		m.Call(f, func() {
			m.ConsInt(1, uint64(d), 1, 1)
			grow(d - 1)
		})
	}
	grow(30)
	rt.Collect(false)
	if rt.Stats().MarkersPlaced == 0 {
		t.Fatal("semispace run with MarkerN=2 placed no stack markers")
	}
}
