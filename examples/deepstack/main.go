// Deepstack demonstrates generational stack collection (§5 of the paper):
// a deeply recursive program pays heavily for stack-root scanning at every
// collection, and stack markers recover most of that cost by reusing the
// scan results for the unchanged part of the stack.
//
// Run with:
//
//	go run ./examples/deepstack
package main

import (
	"fmt"

	"tilgc/gcsim"
)

const (
	depth = 2000 // activation records kept live
	churn = 60   // allocation rounds at full depth
	site  = gcsim.SiteID(7)
)

// run executes the deep-stack workload and reports the stack-scanning
// share of GC time.
func run(collector gcsim.CollectorChoice) (stackSec, gcSec float64, decoded, reused uint64) {
	rt := gcsim.NewRuntime(gcsim.Config{
		Collector:    collector,
		NurseryWords: 2048,
	})
	m := rt.Mutator()
	frame := m.PtrFrame("level", 1)

	// Recurse to full depth, parking one live record in every frame —
	// the long chain of activation records a non-tail-recursive
	// functional program builds.
	var descend func(d int)
	descend = func(d int) {
		m.Call(frame, func() {
			m.AllocRecord(site, 2, 0, 1)
			m.InitIntField(1, 0, uint64(d))
			if d < depth {
				descend(d + 1)
				// Our frame's record must have survived every collection
				// that happened below.
				if m.LoadFieldInt(1, 0) != uint64(d) {
					panic("frame-local record corrupted")
				}
				return
			}
			// At full depth: allocate garbage so collections keep coming
			// while the whole 2000-frame stack is live.
			for round := 0; round < churn; round++ {
				for i := 0; i < 300; i++ {
					m.AllocRecord(site+1, 2, 0, 1)
					m.InitIntField(1, 0, uint64(d)) // restore sentinel shape
				}
				m.AllocRecord(site, 2, 0, 1)
				m.InitIntField(1, 0, uint64(d))
			}
		})
	}
	descend(1)

	s := rt.Stats()
	return rt.GCStackSeconds(), rt.GCSeconds(), s.FramesDecoded, s.FramesReused
}

func main() {
	baseStack, baseGC, baseDecoded, _ := run(gcsim.Generational)
	markStack, markGC, markDecoded, markReused := run(gcsim.GenerationalMarkers)

	fmt.Printf("deep stack: %d frames, collections at full depth\n\n", depth)
	fmt.Printf("%-22s %12s %12s %12s %12s\n", "", "gc-stack(s)", "gc-total(s)", "decoded", "reused")
	fmt.Printf("%-22s %12.4f %12.4f %12d %12s\n",
		"generational", baseStack, baseGC, baseDecoded, "-")
	fmt.Printf("%-22s %12.4f %12.4f %12d %12d\n",
		"generational+markers", markStack, markGC, markDecoded, markReused)
	fmt.Printf("\nstack-scan cost reduced %.0f%%, total GC reduced %.0f%%\n",
		100*(1-markStack/baseStack), 100*(1-markGC/baseGC))
	fmt.Println("(compare the paper's Table 5: Knuth-Bendix GC time -67.5%)")
}
