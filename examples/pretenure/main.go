// Pretenure demonstrates profile-driven pretenuring (§6 of the paper),
// end to end:
//
//  1. run the N-queens benchmark with the heap profiler attached;
//  2. print the Figure 2-style per-site lifetime report;
//  3. derive the pretenuring policy with the paper's 80% old-cutoff rule;
//  4. re-run with pretenuring and compare the bytes copied by the
//     collector.
//
// Run with:
//
//	go run ./examples/pretenure
package main

import (
	"fmt"
	"os"

	"tilgc/gcsim"
)

func main() {
	const bench = "Nqueen"
	scale := gcsim.Scale{Repeat: 0.02}
	info, err := gcsim.Describe(bench)
	if err != nil {
		panic(err)
	}

	// Step 1-2: profiled run (small nursery = frequent lifetime samples).
	profiled := gcsim.NewRuntime(gcsim.Config{
		Collector:    gcsim.Generational,
		NurseryWords: 4 * 1024,
		Profile:      true,
		SiteNames:    info.Sites,
	})
	if _, err := profiled.RunBenchmark(bench, scale); err != nil {
		panic(err)
	}
	profiled.Profiler().WriteReport(os.Stdout, gcsim.DefaultReportOptions(bench))

	// Step 3: the policy.
	policy := gcsim.PolicyFromProfile(profiled.Profiler(), 80, 32)
	fmt.Printf("\npretenured sites (old%% >= 80):")
	for _, id := range policy.Sites() {
		fmt.Printf(" %d(%s)", id, info.Sites[id])
	}
	fmt.Println()

	// Step 4: baseline vs pretenured, identical budgets.
	base := gcsim.NewRuntime(gcsim.Config{
		Collector: gcsim.GenerationalMarkers, NurseryWords: 8 * 1024,
	})
	checkBase, _ := base.RunBenchmark(bench, scale)

	pre := gcsim.NewRuntime(gcsim.Config{
		Collector: gcsim.GenerationalFull, Pretenure: policy, NurseryWords: 8 * 1024,
	})
	checkPre, _ := pre.RunBenchmark(bench, scale)

	if checkBase != checkPre {
		panic("pretenuring changed the program's answer")
	}
	fmt.Printf("\n%-32s %12s %12s %10s\n", "", "copied(KB)", "gc(s)", "pretenured")
	fmt.Printf("%-32s %12d %12.4f %10d\n", base.CollectorName(),
		base.Stats().BytesCopied/1024, base.GCSeconds(), base.Stats().Pretenured)
	fmt.Printf("%-32s %12d %12.4f %10d\n", pre.CollectorName(),
		pre.Stats().BytesCopied/1024, pre.GCSeconds(), pre.Stats().Pretenured)
	fmt.Printf("\ncopying reduced %.0f%% (the paper reports Nqueen GC time -50%%)\n",
		100*(1-float64(pre.Stats().BytesCopied)/float64(base.Stats().BytesCopied)))
}
