// Quickstart: build a simulated runtime with the generational collector,
// allocate heap structures through the slot-oriented mutator API, and
// inspect the collector's behaviour.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"tilgc/gcsim"
)

func main() {
	// A generational collector with a deliberately small nursery so this
	// tiny program still triggers collections.
	rt := gcsim.NewRuntime(gcsim.Config{
		Collector:    gcsim.Generational,
		NurseryWords: 1024, // 8KB
	})
	m := rt.Mutator()

	// Register a frame layout: two pointer slots the collector will trace.
	frame := m.PtrFrame("main", 2)

	const site gcsim.SiteID = 1

	m.Call(frame, func() {
		// Build a 10,000-cell list in slot 1. Every allocation may move
		// previously allocated cells; the collector rewrites slot 1 for
		// us whenever that happens — the mutator never sees a stale
		// pointer as long as it keeps live references in traced slots.
		for i := uint64(0); i < 10_000; i++ {
			m.ConsInt(site, i*i, 1, 1)
		}

		// Walk the list (slot 2 is the cursor) and sum the heads.
		m.SetSlot(2, m.Slot(1))
		var sum uint64
		for !m.IsNil(2) {
			sum += m.HeadInt(2)
			m.Tail(2, 2)
		}
		fmt.Printf("sum of 10k squares: %d\n", sum)

		// Drop the list and collect: the heap empties.
		m.SetSlotNil(1)
	})
	rt.Collect(true)

	s := rt.Stats()
	fmt.Printf("collector:        %s\n", rt.CollectorName())
	fmt.Printf("collections:      %d (%d major)\n", s.NumGC, s.NumMajor)
	fmt.Printf("allocated:        %d KB in %d objects\n", s.BytesAllocated/1024, s.ObjectsAllocated)
	fmt.Printf("copied:           %d KB\n", s.BytesCopied/1024)
	fmt.Printf("max live:         %d KB\n", s.MaxLiveBytes/1024)
	fmt.Printf("simulated client: %.4fs   gc: %.4fs\n", rt.ClientSeconds(), rt.GCSeconds())
}
