// Custom shows how to write your own program against the simulated
// runtime, exercising machinery the benchmark suite abstracts away:
//
//   - COMPUTE traces: a polymorphic stack slot whose pointer-ness the
//     collector derives from a runtime type value in another slot, as
//     TIL's intensional polymorphism requires (§2.3, Figure 1);
//   - per-variant record pointer masks (boxed vs unboxed payloads);
//   - exceptions unwinding a deep stack past stack-marker frames (§5).
//
// Run with:
//
//	go run ./examples/custom
package main

import (
	"fmt"

	"tilgc/gcsim"
)

const (
	siteCell    gcsim.SiteID = 10
	sitePayload gcsim.SiteID = 11
	siteGarbage gcsim.SiteID = 12
	siteList    gcsim.SiteID = 13
)

const cells = 5000

func main() {
	rt := gcsim.NewRuntime(gcsim.Config{
		Collector:    gcsim.GenerationalMarkers,
		NurseryWords: 2048, // 16KB: tiny, so this demo collects constantly
	})
	m := rt.Mutator()

	mainF := m.PtrFrame("main", 3)
	// The polymorphic frame: slot 1 holds a runtime type, slot 2 holds a
	// value that is a pointer exactly when slot 1 says so, slot 3 is an
	// ordinary pointer slot.
	poly := m.Frame("poly",
		gcsim.NP(),        // 1: runtime type (0 = unboxed, 1 = boxed)
		gcsim.COMPSLOT(1), // 2: the polymorphic payload
		gcsim.PTR(),       // 3: result cell
	)
	deep := m.PtrFrame("deep", 1)

	m.Call(mainF, func() {
		// Phase 1: build a mixed list of boxed and unboxed cells. Each
		// iteration parks the payload in the COMPUTE-traced slot and then
		// allocates garbage, forcing collections that must classify the
		// slot correctly from the runtime type.
		m.SetSlotNil(1)
		for i := uint64(0); i < cells; i++ {
			boxed := i%3 == 0
			m.CallArgs(poly, nil, func() {
				if boxed {
					m.SetSlot(1, 1) // TypePointer
					m.AllocRecord(sitePayload, 1, 0, 3)
					m.InitIntField(3, 0, i)
					m.SetSlot(2, m.Slot(3))
				} else {
					m.SetSlot(1, 0) // TypeNonPointer
					m.SetSlot(2, i*2+1)
				}
				for j := 0; j < 8; j++ {
					m.AllocRecord(siteGarbage, 3, 0, 3)
				}
				// The cell: [isBoxed, payload, spare]; the payload field
				// is in the pointer mask only for the boxed variant.
				mask := uint64(0b000)
				if boxed {
					mask = 0b010
				}
				m.AllocRecord(siteCell, 3, mask, 3)
				m.InitIntField(3, 0, map[bool]uint64{false: 0, true: 1}[boxed])
				if boxed {
					m.InitPtrField(3, 1, 2)
				} else {
					m.InitIntField(3, 1, m.Slot(2))
				}
				m.RetPtr(3)
			})
			m.TakeRet(2)
			m.ConsPtr(siteList, 2, 1, 1)
		}

		// Verify the list survived the collection storm intact.
		m.SetSlot(2, m.Slot(1))
		var i uint64 = cells
		for !m.IsNil(2) {
			i--
			m.Head(2, 3)
			if m.LoadFieldInt(3, 0) == 1 { // boxed
				if i%3 != 0 {
					panic("variant tag corrupted")
				}
				m.LoadField(3, 1, 3)
				if m.LoadFieldInt(3, 0) != i {
					panic(fmt.Sprintf("boxed payload %d corrupted", i))
				}
			} else if m.LoadFieldInt(3, 1) != i*2+1 {
				panic(fmt.Sprintf("unboxed payload %d corrupted", i))
			}
			m.Tail(2, 2)
		}
		fmt.Printf("verified %d polymorphic cells across %d collections\n",
			cells, rt.Stats().NumGC)

		// Phase 2: raise an exception from 800 frames deep. The unwind
		// jumps past every stack marker placed during phase-1 scans; the
		// §5 watermark keeps the next collection sound.
		caught := false
		m.TryCatch(func() {
			var descend func(d int)
			descend = func(d int) {
				m.Call(deep, func() {
					m.AllocRecord(siteGarbage, 2, 0, 1)
					if d < 800 {
						descend(d + 1)
						return
					}
					m.Raise()
				})
			}
			descend(0)
		}, func() {
			caught = true
		})
		if !caught {
			panic("exception lost")
		}
		// Collections after the unwind must still be correct.
		rt.Collect(false)
		m.SetSlot(2, m.Slot(1))
		n := m.ListLen(1, 2)
		fmt.Printf("list intact after deep unwind: %d cells\n", n)
	})

	s := rt.Stats()
	fmt.Printf("frames decoded %d, reused via markers %d, markers placed %d\n",
		s.FramesDecoded, s.FramesReused, s.MarkersPlaced)
}
