// Command gctrace inspects and converts GC trace files captured with
// gcbench -trace (or any harness run with tracing enabled).
//
// Usage:
//
//	gctrace summary [-top N] FILE    # phase breakdown, marker hit rate,
//	                                 # pause histogram, per-site tenure table
//	gctrace metrics FILE             # per-run metrics registry dump
//	gctrace check FILE               # parse + validate; exits non-zero on
//	                                 # schema or reconciliation failure
//	gctrace convert -to chrome [-o OUT] FILE   # JSONL -> Perfetto JSON
//	gctrace slo [-windows W,..] [-o OUT] FILE  # SLO report: exact pause and
//	                                           # request percentiles, MMU/AMU
//	                                           # curve (-o writes report JSONL)
//	gctrace mmu [-windows W,..] [-chrome OUT] FILE  # utilization curve table
//	                                           # (-chrome writes Perfetto
//	                                           # counter tracks)
//
// FILE is a schema-versioned JSONL trace; "-" reads stdin. Chrome-format
// traces are a write-only sink (load them in Perfetto / chrome://tracing);
// convert accepts only JSONL input.
//
// All quantities are simulated cycles from the cost model, so output for
// a given trace is byte-identical everywhere.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tilgc/internal/slo"
	"tilgc/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "summary":
		err = cmdSummary(os.Args[2:])
	case "metrics":
		err = cmdMetrics(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "slo":
		err = cmdSLO(os.Args[2:])
	case "mmu":
		err = cmdMMU(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "gctrace: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gctrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gctrace summary [-top N] FILE              human-readable trace digest
  gctrace metrics FILE                       per-run metrics registry dump
  gctrace check FILE                         validate schema + reconciliation
  gctrace convert -to FORMAT [-o OUT] FILE   convert (FORMAT: jsonl, chrome)
  gctrace slo [-windows W,..] [-o OUT] FILE  SLO report: pause/request
                                             percentiles + utilization curve
                                             (-o writes the report as JSONL)
  gctrace mmu [-windows W,..] [-chrome OUT] FILE
                                             MMU/AMU curve table (-chrome
                                             writes Perfetto counter tracks)

FILE is a JSONL trace from 'gcbench -trace'; "-" reads stdin.`)
}

// readFile parses the JSONL trace named by the sole positional argument.
func readFile(fs *flag.FlagSet) (*trace.File, error) {
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("want exactly one trace file argument, got %d", fs.NArg())
	}
	name := fs.Arg(0)
	var in io.Reader
	if name == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	tf, err := trace.ReadJSONL(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return tf, nil
}

func cmdSummary(args []string) error {
	fs := flag.NewFlagSet("gctrace summary", flag.ExitOnError)
	top := fs.Int("top", 5, "number of longest pauses to list per run")
	fs.Parse(args)
	f, err := readFile(fs)
	if err != nil {
		return err
	}
	return f.WriteSummary(os.Stdout, *top)
}

func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("gctrace metrics", flag.ExitOnError)
	fs.Parse(args)
	f, err := readFile(fs)
	if err != nil {
		return err
	}
	return f.WriteMetrics(os.Stdout)
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("gctrace check", flag.ExitOnError)
	fs.Parse(args)
	f, err := readFile(fs)
	if err != nil {
		return err
	}
	if err := f.Validate(); err != nil {
		return err
	}
	events := 0
	for _, d := range f.Runs {
		events += len(d.Events)
	}
	fmt.Printf("ok: schema %d, %d runs, %d events; spans paired, phase cycles reconcile with meter totals\n",
		f.Schema, len(f.Runs), events)
	return nil
}

// parseWindows parses a comma-separated window sweep in cycles; an empty
// string selects the default sweep.
func parseWindows(s string) ([]uint64, error) {
	if s == "" {
		return slo.DefaultWindows, nil
	}
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -windows entry %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func cmdSLO(args []string) (err error) {
	fs := flag.NewFlagSet("gctrace slo", flag.ExitOnError)
	windows := fs.String("windows", "", "comma-separated window sweep in cycles (default 1000,10000,100000,1000000)")
	out := fs.String("o", "", "also write the report as schema-versioned JSONL to FILE (\"-\" = stdout instead of the table)")
	fs.Parse(args)
	wins, err := parseWindows(*windows)
	if err != nil {
		return err
	}
	f, err := readFile(fs)
	if err != nil {
		return err
	}
	rep, err := slo.ComputeFile(f, wins)
	if err != nil {
		return err
	}
	if err := rep.Validate(); err != nil {
		return fmt.Errorf("computed report fails validation: %w", err)
	}
	if *out == "-" {
		return rep.WriteJSONL(os.Stdout)
	}
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := of.Close(); err == nil {
				err = cerr
			}
		}()
		if err := rep.WriteJSONL(of); err != nil {
			return err
		}
	}
	return rep.WriteTable(os.Stdout)
}

func cmdMMU(args []string) (err error) {
	fs := flag.NewFlagSet("gctrace mmu", flag.ExitOnError)
	windows := fs.String("windows", "", "comma-separated window sweep in cycles (default 1000,10000,100000,1000000)")
	chrome := fs.String("chrome", "", "also write the curves as Perfetto counter tracks to FILE (\"-\" = stdout instead of the table)")
	fs.Parse(args)
	wins, err := parseWindows(*windows)
	if err != nil {
		return err
	}
	f, err := readFile(fs)
	if err != nil {
		return err
	}
	rep, err := slo.ComputeFile(f, wins)
	if err != nil {
		return err
	}
	if *chrome == "-" {
		return rep.WriteChromeCounters(os.Stdout)
	}
	if *chrome != "" {
		of, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := of.Close(); err == nil {
				err = cerr
			}
		}()
		if err := rep.WriteChromeCounters(of); err != nil {
			return err
		}
	}
	return rep.WriteMMUTable(os.Stdout)
}

func cmdConvert(args []string) (err error) {
	fs := flag.NewFlagSet("gctrace convert", flag.ExitOnError)
	to := fs.String("to", "chrome", "output format: jsonl or chrome")
	out := fs.String("o", "-", "output file (\"-\" = stdout)")
	fs.Parse(args)
	if *to != "jsonl" && *to != "chrome" {
		return fmt.Errorf("unknown -to format %q (want jsonl or chrome)", *to)
	}
	f, err := readFile(fs)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := of.Close(); err == nil {
				err = cerr
			}
		}()
		w = of
	}
	if *to == "chrome" {
		err = f.WriteChrome(w)
	} else {
		err = f.WriteJSONL(w)
	}
	return err
}
