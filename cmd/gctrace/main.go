// Command gctrace inspects and converts GC trace files captured with
// gcbench -trace (or any harness run with tracing enabled).
//
// Usage:
//
//	gctrace summary [-top N] FILE    # phase breakdown, marker hit rate,
//	                                 # pause histogram, per-site tenure table
//	gctrace metrics FILE             # per-run metrics registry dump
//	gctrace check FILE               # parse + validate; exits non-zero on
//	                                 # schema or reconciliation failure
//	gctrace convert -to chrome [-o OUT] FILE   # JSONL -> Perfetto JSON
//
// FILE is a schema-versioned JSONL trace; "-" reads stdin. Chrome-format
// traces are a write-only sink (load them in Perfetto / chrome://tracing);
// convert accepts only JSONL input.
//
// All quantities are simulated cycles from the cost model, so output for
// a given trace is byte-identical everywhere.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tilgc/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "summary":
		err = cmdSummary(os.Args[2:])
	case "metrics":
		err = cmdMetrics(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "gctrace: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gctrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gctrace summary [-top N] FILE              human-readable trace digest
  gctrace metrics FILE                       per-run metrics registry dump
  gctrace check FILE                         validate schema + reconciliation
  gctrace convert -to FORMAT [-o OUT] FILE   convert (FORMAT: jsonl, chrome)

FILE is a JSONL trace from 'gcbench -trace'; "-" reads stdin.`)
}

// readFile parses the JSONL trace named by the sole positional argument.
func readFile(fs *flag.FlagSet) (*trace.File, error) {
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("want exactly one trace file argument, got %d", fs.NArg())
	}
	name := fs.Arg(0)
	var in io.Reader
	if name == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	tf, err := trace.ReadJSONL(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return tf, nil
}

func cmdSummary(args []string) error {
	fs := flag.NewFlagSet("gctrace summary", flag.ExitOnError)
	top := fs.Int("top", 5, "number of longest pauses to list per run")
	fs.Parse(args)
	f, err := readFile(fs)
	if err != nil {
		return err
	}
	return f.WriteSummary(os.Stdout, *top)
}

func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("gctrace metrics", flag.ExitOnError)
	fs.Parse(args)
	f, err := readFile(fs)
	if err != nil {
		return err
	}
	return f.WriteMetrics(os.Stdout)
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("gctrace check", flag.ExitOnError)
	fs.Parse(args)
	f, err := readFile(fs)
	if err != nil {
		return err
	}
	if err := f.Validate(); err != nil {
		return err
	}
	events := 0
	for _, d := range f.Runs {
		events += len(d.Events)
	}
	fmt.Printf("ok: schema %d, %d runs, %d events; spans paired, phase cycles reconcile with meter totals\n",
		f.Schema, len(f.Runs), events)
	return nil
}

func cmdConvert(args []string) (err error) {
	fs := flag.NewFlagSet("gctrace convert", flag.ExitOnError)
	to := fs.String("to", "chrome", "output format: jsonl or chrome")
	out := fs.String("o", "-", "output file (\"-\" = stdout)")
	fs.Parse(args)
	if *to != "jsonl" && *to != "chrome" {
		return fmt.Errorf("unknown -to format %q (want jsonl or chrome)", *to)
	}
	f, err := readFile(fs)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := of.Close(); err == nil {
				err = cerr
			}
		}()
		w = of
	}
	if *to == "chrome" {
		err = f.WriteChrome(w)
	} else {
		err = f.WriteJSONL(w)
	}
	return err
}
