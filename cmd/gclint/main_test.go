package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The tests run the CLI in-process against the lint fixture packages (the
// test binary's working directory is cmd/gclint, hence the ../.. paths).
const (
	cleanFixture  = "../../internal/lint/testdata/src/internal/costmodel"
	dirtyFixture  = "../../internal/lint/testdata/src/badignore"
	seamedFixture = "../../internal/lint/testdata/src/internal/core"
)

// TestExitClean pins exit code 0 for a finding-free package.
func TestExitClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{cleanFixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d on clean package, want 0\nstdout: %s\nstderr: %s", code, &stdout, &stderr)
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run wrote to stdout: %s", &stdout)
	}
}

// TestExitFindings pins exit code 1 plus the human-readable rendering when
// diagnostics survive suppression.
func TestExitFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{dirtyFixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d on package with findings, want 1\nstderr: %s", code, &stderr)
	}
	if !strings.Contains(stdout.String(), "malformed //lint:ignore") {
		t.Errorf("stdout missing diagnostic text:\n%s", &stdout)
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing findings summary:\n%s", &stderr)
	}
}

// TestExitLoadError pins exit code 2 for a pattern that cannot load.
func TestExitLoadError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/package"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d on bad pattern, want 2", code)
	}
	if !strings.Contains(stderr.String(), "gclint:") {
		t.Errorf("stderr missing load error:\n%s", &stderr)
	}
}

// TestJSONReport pins the machine-readable schema CI consumes: both
// top-level arrays present, fields populated, paths module-relative
// (forward slashes, no absolute paths), and diagnostics in the stable
// (file, line, col, analyzer) order.
func TestJSONReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", dirtyFixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, &stderr)
	}
	var report jsonReport
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, &stdout)
	}
	if len(report.Diagnostics) != 3 {
		t.Fatalf("got %d diagnostics, want 3 (2 malformed + 1 stale):\n%s", len(report.Diagnostics), &stdout)
	}
	for i, d := range report.Diagnostics {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("diagnostic with empty field: %+v", d)
		}
		if strings.HasPrefix(d.File, "/") || strings.Contains(d.File, "\\") {
			t.Errorf("diagnostic path not module-relative slash form: %q", d.File)
		}
		if i > 0 {
			p := report.Diagnostics[i-1]
			if p.File > d.File || (p.File == d.File && p.Line > d.Line) {
				t.Errorf("diagnostics not sorted at %+v", d)
			}
		}
	}
	if report.Suppressions == nil {
		t.Error("suppressions array absent (must be [] even when empty)")
	}
}

// TestJSONCleanIsEmptyArrays checks a clean -json run still emits the
// full document shape so CI parsers never special-case the happy path.
func TestJSONCleanIsEmptyArrays(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", cleanFixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr: %s", code, &stderr)
	}
	var report jsonReport
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, &stdout)
	}
	if report.Diagnostics == nil || report.Suppressions == nil {
		t.Errorf("clean report must contain both arrays: %s", &stdout)
	}
}

// TestIgnoresInventory pins the -ignores rendering: the seam fixture holds
// used gc:nobarrier/gc:nocharge annotations plus deliberately stale ones,
// all of which must appear with their use state.
func TestIgnoresInventory(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// The core fixture has real findings too, so expect exit 1; the
	// inventory must still be printed after the diagnostics.
	if code := run([]string{"-ignores", seamedFixture}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, &stderr)
	}
	out := stdout.String()
	for _, want := range []string{"[gc:nobarrier]", "[gc:nocharge]", "[lint:ignore]", "(used)", "(unused)"} {
		if !strings.Contains(out, want) {
			t.Errorf("-ignores output missing %q:\n%s", want, out)
		}
	}
}

// TestTimingOutput pins the -time instrumentation CI logs for the
// single-load performance budget.
func TestTimingOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-time", cleanFixture}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr: %s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "loaded") || !strings.Contains(stderr.String(), "analyzed in") {
		t.Errorf("-time output missing load/analyze report:\n%s", &stderr)
	}
}
