// Command gclint runs the repository's custom static analyzers (see
// internal/lint) over the module. It complements `go vet` with checks for
// the determinism contract this simulator depends on:
//
//	maporder  order-sensitive iteration over Go maps
//	detrand   randomness / wall-clock / scheduler reads in the core
//	cfgread   exported Config fields that nothing ever reads
//
// Usage:
//
//	go run ./cmd/gclint ./...          # whole module (the CI invocation)
//	go run ./cmd/gclint ./internal/rt  # one package
//
// Exits 1 when any diagnostic survives suppression, so it can gate CI.
// Suppress a finding with a justified comment on the same line or the
// line above: //lint:ignore <analyzer> <why this one is safe>.
package main

import (
	"flag"
	"fmt"
	"os"

	"tilgc/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gclint [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Default() {
			fmt.Fprintf(os.Stderr, "  %-9s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gclint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(dir, patterns, lint.Default())
	if err != nil {
		fmt.Fprintln(os.Stderr, "gclint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gclint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
