// Command gclint runs the repository's custom static analyzers (see
// internal/lint) over the module. It complements `go vet` with checks for
// the determinism and GC-invariant contracts this simulator depends on:
//
//	maporder      order-sensitive iteration over Go maps
//	detrand       randomness / wall-clock / scheduler reads in the core
//	cfgread       exported Config fields that nothing ever reads
//	barriercheck  raw heap stores that cannot reach the write barrier
//	costcharge    exported collector ops that touch state without a charge
//	seamcheck     raw-word access (Raw/codecs/Addr arithmetic) outside kernels*.go
//	detflow       host/map-order taint flowing into fence-package sinks
//
// Usage:
//
//	go run ./cmd/gclint ./...            # whole module (the CI invocation)
//	go run ./cmd/gclint -json ./...      # machine-readable diagnostics
//	go run ./cmd/gclint -ignores ./...   # active-suppression inventory
//	go run ./cmd/gclint -time ./...      # load/analyze wall time to stderr
//
// Exit codes are a contract: 0 means no findings, 1 means at least one
// diagnostic survived suppression, 2 means the load itself failed (bad
// pattern, type error). CI gates on the exit code and consumes the -json
// stream.
//
// Suppress a finding with a justified comment on the same line or the
// line above: //lint:ignore <analyzer> <why this one is safe>. Collector
// kernels annotate whole functions with //gc:nobarrier <why> or
// //gc:nocharge <why> (honored only inside the collector packages).
// Suppressions that no longer suppress anything are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"tilgc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the machine-readable diagnostic schema. File paths are
// module-relative when possible, and the array keeps the framework's
// stable sort (file, line, col, analyzer).
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonSuppression mirrors lint.Suppression for the -json -ignores report.
type jsonSuppression struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Kind     string `json:"kind"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
	Used     bool   `json:"used"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Diagnostics  []jsonDiag        `json:"diagnostics"`
	Suppressions []jsonSuppression `json:"suppressions"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics and suppressions as JSON on stdout")
	ignores := fs.Bool("ignores", false, "list every active suppression with analyzer, reason, and use state")
	timing := fs.Bool("time", false, "report load/analyze wall time on stderr")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: gclint [-json] [-ignores] [-time] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Default() {
			fmt.Fprintf(stderr, "  %-13s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "gclint:", err)
		return 2
	}

	t0 := time.Now()
	pkgs, err := lint.Load(dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "gclint:", err)
		return 2
	}
	tLoad := time.Since(t0)
	t1 := time.Now()
	res := lint.Analyze(pkgs, lint.Default())
	tAnalyze := time.Since(t1)
	if *timing {
		fmt.Fprintf(stderr, "gclint: loaded %d packages in %v, analyzed in %v\n",
			len(pkgs), tLoad.Round(time.Millisecond), tAnalyze.Round(time.Millisecond))
	}

	if *jsonOut {
		report := jsonReport{Diagnostics: []jsonDiag{}, Suppressions: []jsonSuppression{}}
		for _, d := range res.Diagnostics {
			report.Diagnostics = append(report.Diagnostics, jsonDiag{
				File: relPath(dir, d.Pos.Filename), Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		for _, s := range res.Suppressions {
			report.Suppressions = append(report.Suppressions, jsonSuppression{
				File: relPath(dir, s.Pos.Filename), Line: s.Pos.Line,
				Kind: s.Kind, Analyzer: s.Analyzer, Reason: s.Reason, Used: s.Used,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "gclint:", err)
			return 2
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Fprintln(stdout, d)
		}
		if *ignores {
			for _, s := range res.Suppressions {
				fmt.Fprintln(stdout, s)
			}
		}
	}

	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(stderr, "gclint: %d finding(s)\n", len(res.Diagnostics))
		return 1
	}
	return 0
}

// relPath renders a diagnostic path relative to the working directory
// when possible (stable across checkouts for the JSON stream).
func relPath(dir, path string) string {
	if rel, err := filepath.Rel(dir, path); err == nil && !filepath.IsAbs(rel) {
		return filepath.ToSlash(rel)
	}
	return path
}
