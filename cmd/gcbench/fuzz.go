package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"tilgc/internal/fuzz"
)

// parseSeedRange parses "A..B" (half-open) or a single seed "A" (one
// seed: [A, A+1)).
func parseSeedRange(s string) (from, to uint64, err error) {
	if i := strings.Index(s, ".."); i >= 0 {
		from, err = strconv.ParseUint(s[:i], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad seed range %q: %v", s, err)
		}
		to, err = strconv.ParseUint(s[i+2:], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad seed range %q: %v", s, err)
		}
		if to < from {
			return 0, 0, fmt.Errorf("bad seed range %q: end before start", s)
		}
		return from, to, nil
	}
	from, err = strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad seed %q: %v", s, err)
	}
	return from, from + 1, nil
}

// runFuzzCLI drives the differential fuzzing fleet: replay the corpus,
// sweep the seed range across the collector matrix, optionally minimize
// failures, and exit nonzero if anything diverged.
func runFuzzCLI(seeds, corpusDir string, parallel int, minimize, verbose, progress bool) {
	exit := 0

	// Committed corpus first: every pinned reproducer must stay fixed.
	entries, err := fuzz.LoadCorpus(corpusDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcbench:", err)
		os.Exit(1)
	}
	for _, e := range entries {
		fails := fuzz.CheckProgram(e.Program, nil)
		if len(fails) == 0 {
			fmt.Printf("corpus %-40s ok\n", e.Name)
			continue
		}
		exit = 1
		for _, f := range fails {
			fmt.Printf("corpus %-40s FAIL %s\n", e.Name, f)
		}
	}

	from, to, err := parseSeedRange(seeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcbench:", err)
		os.Exit(2)
	}
	opts := fuzz.Options{
		From:        from,
		To:          to,
		Parallelism: parallel,
		Minimize:    minimize,
	}
	if progress {
		opts.Progress = func(done, total, failures int) {
			if done%100 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "[%d/%d] seeds checked, %d failure(s)\n", done, total, failures)
			}
		}
	}
	rep := fuzz.RunSeeds(opts)
	rep.Render(os.Stdout, verbose)
	for _, m := range rep.Minimized {
		fmt.Printf("--- minimized reproducer for %s ---\n%s", m.Failure, m.Program.Format())
	}
	if rep.FailureCount() > 0 {
		exit = 1
	}
	os.Exit(exit)
}
