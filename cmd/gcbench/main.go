// Command gcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	gcbench -table 4               # Table 4 (generational collector sweep)
//	gcbench -table 5 -repeat 0.05  # Table 5 at a larger workload scale
//	gcbench -table 5 -parallel 8   # fan runs out over 8 workers
//	gcbench -table 4 -sanitize     # verify heap invariants after every GC
//	gcbench -table 5 -trace t.jsonl         # capture a per-run GC trace
//	gcbench -table 5 -trace t.json -trace-format chrome  # Perfetto trace
//	gcbench -table 5 -metrics      # per-run metrics table after the sweep
//	gcbench -figure 2              # Figure 2 heap profiles
//	gcbench -table 5 -trace t.jsonl -trace-heap  # ...plus per-space occupancy
//	gcbench -experiment elide      # §7.2 scan-elision extension
//	gcbench -experiment adapt      # §9 online adaptive pretenuring
//	gcbench -experiment slo        # latency-SLO table (server traffic mixes)
//	gcbench -experiment oldgen     # old-generation collectors: copy vs mark-sweep vs mark-compact
//	gcbench -table 5 -old marksweep # any sweep with a non-moving old generation
//	gcbench -table 4 -adapt                 # attach the online advisor to every gen run
//	gcbench -table 4 -adapt -adapt-store s.jsonl  # ... and store the learned profiles
//	gcbench -table 4 -adapt -adapt-warm s.jsonl   # ... warm-started from a stored run
//	gcbench -experiment all        # everything, in paper order
//	gcbench -list                  # list benchmarks and experiments
//
// Experiment runs are deterministic and independent, so -parallel only
// changes wall-clock time: the rendered tables are byte-identical at
// every worker count — and so are captured trace files, whose timestamps
// are simulated cycles, never wall clock. -progress streams per-run
// events to stderr, which keeps long sweeps observable without
// disturbing the table on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"tilgc/gcsim"
	"tilgc/internal/trace"
)

func main() {
	table := flag.Int("table", 0, "regenerate table N (1-7)")
	figure := flag.Int("figure", 0, "regenerate figure N (2)")
	experiment := flag.String("experiment", "", "named experiment (see -list), or 'all'")
	repeat := flag.Float64("repeat", gcsim.DefaultScale.Repeat,
		"workload repetition scale (1.0 = the paper's full iteration counts)")
	depth := flag.Float64("depth", 1.0,
		"structural recursion depth scale (1.0 = the paper's stack-depth profile)")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"experiment worker-pool size (1 = serial; output is identical either way)")
	progress := flag.Bool("progress", false, "stream per-run progress to stderr")
	sanitizeRuns := flag.Bool("sanitize", false,
		"run the heap-integrity sanitizer after every collection (slower; output is identical, violations panic)")
	traceOut := flag.String("trace", "",
		"capture a per-run GC trace of every experiment run to FILE (cycle-timestamped, byte-identical under -parallel)")
	traceFormat := flag.String("trace-format", "jsonl",
		"trace sink format: jsonl (schema-versioned, gctrace-readable) or chrome (Perfetto-loadable)")
	traceHeap := flag.Bool("trace-heap", false,
		"sample per-space heap occupancy (live/committed words) at every collection into the trace")
	threads := flag.Int("threads", 0,
		"simulated mutator threads per run (0/1 = single-threaded; only thread-scheduling workloads change results)")
	oldCollector := flag.String("old", "",
		"old-generation collector for every generational run: copy (default), marksweep, or markcompact")
	gcWorkers := flag.Int("gc-workers", 0,
		"parallel copying workers per collection (0/1 = serial; heap contents and client results are identical, pauses shard)")
	adaptRuns := flag.Bool("adapt", false,
		"attach the online adaptive-pretenuring advisor to every generational run (semispace runs are unaffected)")
	adaptStore := flag.String("adapt-store", "",
		"write the advisor profiles learned by every adaptive run to FILE as a warm-startable store (implies -adapt)")
	adaptWarm := flag.String("adapt-warm", "",
		"warm-start every adaptive run from the profile store at FILE (implies -adapt)")
	metrics := flag.Bool("metrics", false,
		"print every run's metrics registry (counters, gauges, pause histogram) after the experiment")
	list := flag.Bool("list", false, "list benchmarks and experiments")
	bench := flag.Bool("bench", false,
		"run the wall-clock benchmark suite (the simulator's own speed; simulated results are unaffected)")
	benchJSON := flag.String("bench-json", "",
		"write benchmark results as JSON to FILE (implies -bench)")
	benchBaseline := flag.String("bench-baseline", "",
		"compare benchmark results against the committed baseline FILE and fail on regression (implies -bench)")
	benchGate := flag.Float64("bench-gate", 10,
		"allowed wall-clock regression percentage against -bench-baseline")
	benchSpeedup := flag.Float64("bench-min-speedup", 1.5,
		"required mini-sweep speedup of the optimized kernels over the reference kernels (0 disables)")
	benchReps := flag.Int("bench-reps", 5, "benchmark repetitions (best-of)")
	benchRef := flag.Bool("bench-ref", true,
		"also measure the reference (pre-optimization) kernels for the speedup ratio")
	fuzzRun := flag.Bool("fuzz", false,
		"run the differential fuzzing fleet: corpus replay plus a seed sweep over the collector matrix")
	fuzzSeeds := flag.String("fuzz-seeds", "0..256",
		"seed range 'A..B' (half-open) or single seed for -fuzz")
	fuzzMinimize := flag.Bool("fuzz-minimize", false,
		"shrink failing programs to minimal reproducers (printed in corpus format)")
	fuzzCorpus := flag.String("fuzz-corpus", "internal/fuzz/corpus",
		"corpus directory replayed before the seed sweep")
	fuzzVerbose := flag.Bool("fuzz-verbose", false,
		"print one report line per seed (deterministic at any -parallel; CI byte-compares this)")
	flag.Parse()

	if *bench || *benchJSON != "" || *benchBaseline != "" {
		runBenchCLI(*benchJSON, *benchBaseline, *benchGate, *benchSpeedup, *benchReps, *benchRef)
		return
	}

	if *fuzzRun {
		//lint:ignore detflow -parallel defaults to NumCPU but only sizes the worker pool; fuzz reports are assembled in seed order and CI byte-compares them at every -parallel level
		runFuzzCLI(*fuzzSeeds, *fuzzCorpus, *parallel, *fuzzMinimize, *fuzzVerbose, *progress)
		return
	}

	if *traceFormat != "jsonl" && *traceFormat != "chrome" {
		fmt.Fprintf(os.Stderr, "gcbench: unknown -trace-format %q (want jsonl or chrome)\n", *traceFormat)
		os.Exit(2)
	}

	if *list {
		fmt.Println("Benchmarks:")
		for _, n := range gcsim.Benchmarks() {
			info, _ := gcsim.Describe(n)
			fmt.Printf("  %-13s %s\n", n, info.Description)
		}
		fmt.Println("Experiments:")
		for _, e := range gcsim.Experiments() {
			fmt.Printf("  %s\n", e)
		}
		return
	}

	oldc, ok := gcsim.ParseOldCollector(*oldCollector)
	if !ok {
		fmt.Fprintf(os.Stderr, "gcbench: unknown -old %q (want copy, marksweep, or markcompact)\n", *oldCollector)
		os.Exit(2)
	}

	opts := gcsim.RunOptions{Parallelism: *parallel, Sanitize: *sanitizeRuns, TraceHeap: *traceHeap,
		Threads: *threads, GCWorkers: *gcWorkers, OldCollector: oldc}
	if *progress {
		opts.Events = progressWriter
	}
	// Adaptive pretenuring: -adapt turns the advisor on for every
	// generational run; -adapt-warm seeds it from a stored profile and
	// -adapt-store collects what this invocation learned. The store sink
	// receives batches in input order, so the written file is byte-identical
	// at every -parallel level (the `adapt` CI job diffs exactly that).
	opts.Adapt = *adaptRuns || *adaptStore != "" || *adaptWarm != ""
	if *adaptWarm != "" {
		in, err := os.Open(*adaptWarm)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gcbench:", err)
			os.Exit(1)
		}
		store, err := gcsim.ReadAdaptStore(in)
		in.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: reading -adapt-warm store: %v\n", err)
			os.Exit(1)
		}
		opts.AdaptWarm = store
	}
	var adaptProfiles []*gcsim.AdaptProfile
	if *adaptStore != "" {
		opts.AdaptSink = func(batch []*gcsim.AdaptProfile) {
			adaptProfiles = append(adaptProfiles, batch...)
		}
	}
	// Trace capture: the experiment renderers batch runs through the
	// harness internally, so the sink is how the per-run recorders reach
	// us. Batches arrive in the order the experiment issues them and each
	// batch is in input order, so the assembled file is deterministic at
	// every -parallel level.
	var traceRuns []*trace.RunData
	if *traceOut != "" || *metrics {
		opts.TraceSink = func(batch []*trace.RunData) {
			traceRuns = append(traceRuns, batch...)
		}
	}

	scale := gcsim.Scale{Repeat: *repeat, Depth: *depth}
	run := func(name string) {
		//lint:ignore detflow opts.Parallel defaults to NumCPU but only sizes the worker pool; batches land in issue order and each batch is input-ordered, so the output is identical at every -parallel level
		if err := gcsim.ExperimentOpts(os.Stdout, name, scale, opts); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench:", err)
			os.Exit(1)
		}
	}

	switch {
	case *table >= 1 && *table <= 7:
		run(fmt.Sprintf("table%d", *table))
	case *figure == 2:
		run("figure2")
	case *experiment == "all":
		fmt.Printf("(workload scale: repeat=%g depth=%g; see EXPERIMENTS.md)\n", *repeat, *depth)
		for _, e := range gcsim.Experiments() {
			run(e)
		}
	case *experiment != "":
		run(*experiment)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *adaptStore != "" {
		if err := writeAdaptStore(adaptProfiles, *adaptStore); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gcbench: wrote advisor store of %d profiles to %s\n",
			len(adaptProfiles), *adaptStore)
	}

	if opts.TraceSink != nil {
		f := trace.NewFile(traceRuns...)
		if *traceOut != "" {
			if err := writeTrace(f, *traceOut, *traceFormat); err != nil {
				fmt.Fprintln(os.Stderr, "gcbench:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "gcbench: wrote %s trace of %d runs to %s\n",
				*traceFormat, len(f.Runs), *traceOut)
		}
		if *metrics {
			fmt.Println()
			if err := f.WriteMetrics(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "gcbench:", err)
				os.Exit(1)
			}
		}
	}
}

// writeAdaptStore serializes the collected advisor profiles.
func writeAdaptStore(profiles []*gcsim.AdaptProfile, path string) error {
	store := &gcsim.AdaptStore{Profiles: profiles}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	err = store.WriteJSONL(out)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeTrace renders the assembled trace file in the requested format.
func writeTrace(f *trace.File, path, format string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if format == "chrome" {
		err = f.WriteChrome(out)
	} else {
		err = f.WriteJSONL(out)
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	return err
}

// progressWriter renders one run event per line on stderr.
func progressWriter(e gcsim.RunEvent) {
	label := e.Config.Label()
	switch e.Kind {
	case gcsim.EventRunStarted:
		fmt.Fprintf(os.Stderr, "[%3d/%3d] start   %s\n", e.Index+1, e.Total, label)
	case gcsim.EventRunFinished:
		if e.Err != nil {
			fmt.Fprintf(os.Stderr, "[%3d/%3d] FAILED  %s: %v\n", e.Index+1, e.Total, label, e.Err)
			return
		}
		fmt.Fprintf(os.Stderr, "[%3d/%3d] done    %-40s %4d GCs  max-pause %.4fs  total %.3fs  (client %.3fs  gc-stack %.3fs  gc-copy %.3fs)\n",
			e.Index+1, e.Total, label, e.GCs, e.MaxPauseSec, e.TotalSec,
			e.Times.Client.Seconds(), e.Times.GCStack.Seconds(), e.Times.GCCopy.Seconds())
	}
}
