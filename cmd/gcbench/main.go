// Command gcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	gcbench -table 4               # Table 4 (generational collector sweep)
//	gcbench -table 5 -repeat 0.05  # Table 5 at a larger workload scale
//	gcbench -figure 2              # Figure 2 heap profiles
//	gcbench -experiment elide      # §7.2 scan-elision extension
//	gcbench -experiment all        # everything, in paper order
//	gcbench -list                  # list benchmarks and experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"tilgc/gcsim"
)

func main() {
	table := flag.Int("table", 0, "regenerate table N (1-7)")
	figure := flag.Int("figure", 0, "regenerate figure N (2)")
	experiment := flag.String("experiment", "", "named experiment (see -list), or 'all'")
	repeat := flag.Float64("repeat", gcsim.DefaultScale.Repeat,
		"workload repetition scale (1.0 = the paper's full iteration counts)")
	depth := flag.Float64("depth", 1.0,
		"structural recursion depth scale (1.0 = the paper's stack-depth profile)")
	list := flag.Bool("list", false, "list benchmarks and experiments")
	flag.Parse()

	if *list {
		fmt.Println("Benchmarks:")
		for _, n := range gcsim.Benchmarks() {
			info, _ := gcsim.Describe(n)
			fmt.Printf("  %-13s %s\n", n, info.Description)
		}
		fmt.Println("Experiments:")
		for _, e := range gcsim.Experiments() {
			fmt.Printf("  %s\n", e)
		}
		return
	}

	scale := gcsim.Scale{Repeat: *repeat, Depth: *depth}
	run := func(name string) {
		if err := gcsim.Experiment(os.Stdout, name, scale); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench:", err)
			os.Exit(1)
		}
	}

	switch {
	case *table >= 1 && *table <= 7:
		run(fmt.Sprintf("table%d", *table))
	case *figure == 2:
		run("figure2")
	case *experiment == "all":
		fmt.Printf("(workload scale: repeat=%g depth=%g; see EXPERIMENTS.md)\n", *repeat, *depth)
		for _, e := range gcsim.Experiments() {
			run(e)
		}
	case *experiment != "":
		run(*experiment)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
