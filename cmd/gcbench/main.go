// Command gcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	gcbench -table 4               # Table 4 (generational collector sweep)
//	gcbench -table 5 -repeat 0.05  # Table 5 at a larger workload scale
//	gcbench -table 5 -parallel 8   # fan runs out over 8 workers
//	gcbench -table 4 -sanitize     # verify heap invariants after every GC
//	gcbench -figure 2              # Figure 2 heap profiles
//	gcbench -experiment elide      # §7.2 scan-elision extension
//	gcbench -experiment all        # everything, in paper order
//	gcbench -list                  # list benchmarks and experiments
//
// Experiment runs are deterministic and independent, so -parallel only
// changes wall-clock time: the rendered tables are byte-identical at
// every worker count. -progress streams per-run events to stderr, which
// keeps long sweeps observable without disturbing the table on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"tilgc/gcsim"
)

func main() {
	table := flag.Int("table", 0, "regenerate table N (1-7)")
	figure := flag.Int("figure", 0, "regenerate figure N (2)")
	experiment := flag.String("experiment", "", "named experiment (see -list), or 'all'")
	repeat := flag.Float64("repeat", gcsim.DefaultScale.Repeat,
		"workload repetition scale (1.0 = the paper's full iteration counts)")
	depth := flag.Float64("depth", 1.0,
		"structural recursion depth scale (1.0 = the paper's stack-depth profile)")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"experiment worker-pool size (1 = serial; output is identical either way)")
	progress := flag.Bool("progress", false, "stream per-run progress to stderr")
	sanitizeRuns := flag.Bool("sanitize", false,
		"run the heap-integrity sanitizer after every collection (slower; output is identical, violations panic)")
	list := flag.Bool("list", false, "list benchmarks and experiments")
	flag.Parse()

	if *list {
		fmt.Println("Benchmarks:")
		for _, n := range gcsim.Benchmarks() {
			info, _ := gcsim.Describe(n)
			fmt.Printf("  %-13s %s\n", n, info.Description)
		}
		fmt.Println("Experiments:")
		for _, e := range gcsim.Experiments() {
			fmt.Printf("  %s\n", e)
		}
		return
	}

	opts := gcsim.RunOptions{Parallelism: *parallel, Sanitize: *sanitizeRuns}
	if *progress {
		opts.Events = progressWriter
	}

	scale := gcsim.Scale{Repeat: *repeat, Depth: *depth}
	run := func(name string) {
		if err := gcsim.ExperimentOpts(os.Stdout, name, scale, opts); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench:", err)
			os.Exit(1)
		}
	}

	switch {
	case *table >= 1 && *table <= 7:
		run(fmt.Sprintf("table%d", *table))
	case *figure == 2:
		run("figure2")
	case *experiment == "all":
		fmt.Printf("(workload scale: repeat=%g depth=%g; see EXPERIMENTS.md)\n", *repeat, *depth)
		for _, e := range gcsim.Experiments() {
			run(e)
		}
	case *experiment != "":
		run(*experiment)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// progressWriter renders one run event per line on stderr.
func progressWriter(e gcsim.RunEvent) {
	label := fmt.Sprintf("%s/%s", e.Config.Workload, e.Config.Kind)
	if e.Config.K > 0 {
		label += fmt.Sprintf(" k=%g", e.Config.K)
	}
	switch e.Kind {
	case gcsim.EventRunStarted:
		fmt.Fprintf(os.Stderr, "[%3d/%3d] start   %s\n", e.Index+1, e.Total, label)
	case gcsim.EventRunFinished:
		if e.Err != nil {
			fmt.Fprintf(os.Stderr, "[%3d/%3d] FAILED  %s: %v\n", e.Index+1, e.Total, label, e.Err)
			return
		}
		fmt.Fprintf(os.Stderr, "[%3d/%3d] done    %-40s %4d GCs  max-pause %.4fs  total %.3fs\n",
			e.Index+1, e.Total, label, e.GCs, e.MaxPauseSec, e.TotalSec)
	}
}
