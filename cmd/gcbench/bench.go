package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"tilgc/internal/core"
	"tilgc/internal/harness"
	"tilgc/internal/workload"
)

// The wall-clock benchmark suite: the simulator's own speed, as opposed to
// the simulated measurements everything else reports. Results are written
// as JSON so a committed baseline (BENCH_PR4.json) can gate later PRs: the
// deterministic simulated fields must match the baseline exactly (an
// equivalence check for free) and wall-clock throughput may not regress
// beyond the gate percentage.
//
// Two kernel modes are measured. "opt" is the shipped code; "ref" swaps in
// the reference copy/scan kernels and pre-optimization allocation paths
// (core.SetReferenceKernels) that the kernel-equivalence tests hold
// observationally identical. The ref/opt ratio is a machine-independent
// record of what the optimized kernels buy.

// benchSchema versions the JSON layout.
const benchSchema = "tilgc-bench/v1"

// benchScale mirrors the root bench_test.go scale: large enough that the
// hot loops dominate, small enough to finish in seconds per run.
var benchWallScale = workload.Scale{Repeat: 0.01, Depth: 0.5}

// benchWorkloads are the paper workloads the baseline tracks.
var benchWorkloads = []string{
	"Checksum", "Knuth-Bendix", "Lexgen", "Life", "PIA", "Simple",
}

// SimFacts are the deterministic outputs of one benchmark run. They are a
// pure function of (workload, scale, collector config), so any drift
// against the committed baseline means observable behaviour changed — the
// wall-clock gate doubles as a kernel-equivalence gate.
type SimFacts struct {
	Check        uint64 `json:"check"`
	NumGC        uint64 `json:"numgc"`
	BytesCopied  uint64 `json:"bytes_copied"`
	ClientCycles uint64 `json:"client_cycles"`
	GCCycles     uint64 `json:"gc_cycles"`
}

// BenchEntry is one workload's measurement.
type BenchEntry struct {
	Name     string   `json:"name"`
	Kind     string   `json:"kind"`
	K        float64  `json:"k"`
	NsPerRun int64    `json:"ns_per_run"`
	RefNs    int64    `json:"ref_ns_per_run,omitempty"`
	Speedup  float64  `json:"speedup,omitempty"`
	Sim      SimFacts `json:"sim"`
}

// SweepResult is the kernel mini-sweep aggregate: the collector-stress
// mutator of core.RunKernelSweep across every collector configuration
// with a distinct kernel path. Unlike the workload entries (mutator
// simulation dominates their wall clock), the sweep keeps the collectors
// hot, so its ref/opt speedup measures the copy/scan kernels themselves.
// The embedded facts are deterministic and compared exactly.
type SweepResult struct {
	Runs        int     `json:"runs"`
	Ns          int64   `json:"ns"`
	RefNs       int64   `json:"ref_ns,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
	Check       uint64  `json:"check"`
	NumGC       uint64  `json:"numgc"`
	BytesCopied uint64  `json:"bytes_copied"`
	GCCycles    uint64  `json:"gc_cycles"`
}

// BenchFile is the serialized benchmark baseline.
type BenchFile struct {
	Schema    string         `json:"schema"`
	Note      string         `json:"note,omitempty"`
	Scale     workload.Scale `json:"scale"`
	Reps      int            `json:"reps"`
	Workloads []BenchEntry   `json:"workloads"`
	MiniSweep SweepResult    `json:"minisweep"`
}

// benchConfig builds the per-workload measurement config.
func benchConfig(name string) harness.RunConfig {
	return harness.RunConfig{
		Workload: name, Scale: benchWallScale,
		Kind: harness.KindGenMarkers, K: 4,
	}
}

// timeRuns measures fn's best-of-reps wall clock. fn is run once untimed
// first, which both warms the calibration cache and CPU caches.
func timeRuns(reps int, fn func()) int64 {
	fn()
	best := int64(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		d := time.Since(start).Nanoseconds()
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

// runBenchCLI is the -bench entry point: run the suite, optionally write
// the JSON artifact, optionally gate against a committed baseline.
func runBenchCLI(jsonOut, baselinePath string, gatePct, minSpeedup float64, reps int, withRef bool) {
	f, err := runBenchSuite(reps, withRef)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcbench:", err)
		os.Exit(1)
	}
	if jsonOut != "" {
		if err := writeBenchJSON(f, jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "gcbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gcbench: wrote benchmark results to %s\n", jsonOut)
	}
	if baselinePath != "" {
		base, err := loadBenchJSON(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gcbench:", err)
			os.Exit(1)
		}
		if bad := compareBench(f, base, gatePct, minSpeedup); len(bad) > 0 {
			for _, m := range bad {
				fmt.Fprintln(os.Stderr, "gcbench: FAIL:", m)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gcbench: benchmark gate passed against %s (gate %g%%, min speedup %gx)\n",
			baselinePath, gatePct, minSpeedup)
	}
}

// runBenchSuite executes the benchmark suite and returns the results.
// Measurements toggle the global kernel mode, so the suite runs serially.
func runBenchSuite(reps int, withRef bool) (*BenchFile, error) {
	f := &BenchFile{Schema: benchSchema, Scale: benchWallScale, Reps: reps}

	measure := func(cfg harness.RunConfig) (int64, *harness.RunResult, error) {
		var last *harness.RunResult
		var err error
		ns := timeRuns(reps, func() {
			if err != nil {
				return
			}
			last, err = harness.Run(cfg)
		})
		return ns, last, err
	}

	for _, name := range benchWorkloads {
		cfg := benchConfig(name)
		fmt.Fprintf(os.Stderr, "bench: %-13s ", name)
		ns, r, err := measure(cfg)
		if err != nil {
			return nil, err
		}
		e := BenchEntry{
			Name: name, Kind: cfg.Kind.String(), K: cfg.K, NsPerRun: ns,
			Sim: SimFacts{
				Check:        r.Check,
				NumGC:        r.Stats.NumGC,
				BytesCopied:  r.Stats.BytesCopied,
				ClientCycles: uint64(r.Times.Client),
				GCCycles:     uint64(r.Times.GC()),
			},
		}
		if withRef {
			core.SetReferenceKernels(true)
			refNs, rr, err := measure(cfg)
			core.SetReferenceKernels(false)
			if err != nil {
				return nil, err
			}
			if got, want := simFacts(rr), e.Sim; got != want {
				return nil, fmt.Errorf("bench: %s: reference kernels diverge: %+v != %+v", name, got, want)
			}
			e.RefNs = refNs
			e.Speedup = ratio(refNs, ns)
		}
		fmt.Fprintf(os.Stderr, "%12.3fms", float64(e.NsPerRun)/1e6)
		if withRef {
			fmt.Fprintf(os.Stderr, "  (ref %.3fms, %.2fx)", float64(e.RefNs)/1e6, e.Speedup)
		}
		fmt.Fprintln(os.Stderr)
		f.Workloads = append(f.Workloads, e)
	}

	var facts core.KernelSweepFacts
	sweep := func() { facts = core.RunKernelSweep() }
	f.MiniSweep.Ns = timeRuns(reps, sweep)
	f.MiniSweep.Runs = facts.Configs
	f.MiniSweep.Check = facts.Check
	f.MiniSweep.NumGC = facts.NumGC
	f.MiniSweep.BytesCopied = facts.BytesCopied
	f.MiniSweep.GCCycles = facts.GCCycles
	if withRef {
		core.SetReferenceKernels(true)
		f.MiniSweep.RefNs = timeRuns(reps, sweep)
		core.SetReferenceKernels(false)
		if facts != (core.KernelSweepFacts{
			Configs: f.MiniSweep.Runs, Check: f.MiniSweep.Check,
			NumGC: f.MiniSweep.NumGC, BytesCopied: f.MiniSweep.BytesCopied,
			GCCycles: f.MiniSweep.GCCycles,
		}) {
			return nil, fmt.Errorf("bench: kernel sweep: reference kernels diverge: %+v", facts)
		}
		f.MiniSweep.Speedup = ratio(f.MiniSweep.RefNs, f.MiniSweep.Ns)
	}
	fmt.Fprintf(os.Stderr, "bench: mini-sweep    %12.3fms", float64(f.MiniSweep.Ns)/1e6)
	if withRef {
		fmt.Fprintf(os.Stderr, "  (ref %.3fms, %.2fx)", float64(f.MiniSweep.RefNs)/1e6, f.MiniSweep.Speedup)
	}
	fmt.Fprintln(os.Stderr)
	return f, nil
}

func simFacts(r *harness.RunResult) SimFacts {
	return SimFacts{
		Check:        r.Check,
		NumGC:        r.Stats.NumGC,
		BytesCopied:  r.Stats.BytesCopied,
		ClientCycles: uint64(r.Times.Client),
		GCCycles:     uint64(r.Times.GC()),
	}
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// writeBenchJSON writes the results file.
func writeBenchJSON(f *BenchFile, path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// loadBenchJSON reads a baseline file.
func loadBenchJSON(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != benchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, benchSchema)
	}
	return &f, nil
}

// wallGateFloorNs exempts entries faster than this from the wall-clock
// regression gate: a millisecond-scale measurement is dominated by
// scheduler noise, so its wall number is recorded for the trend but only
// its deterministic simulated facts are gated.
const wallGateFloorNs = 20e6

// compareBench gates the current results against the committed baseline.
// Deterministic simulated facts must match exactly — that is the
// machine-independent equivalence gate. The wall-clock gate compares the
// opt/ref ratio (each run normalized by its own same-machine reference
// measurement) against the baseline's ratio, since absolute nanoseconds
// from a different machine or load level are not comparable; only when a
// side lacks a reference measurement does it fall back to absolute
// nanoseconds. Finally the mini-sweep speedup must stay at or above
// minSpeedup. Returns the list of violations.
func compareBench(cur, base *BenchFile, gatePct, minSpeedup float64) []string {
	var bad []string
	wallGate := func(name string, curNs, curRef, baseNs, baseRef int64) {
		if baseNs < wallGateFloorNs {
			return
		}
		curCost, baseCost, unit := float64(curNs), float64(baseNs), "ms"
		if curRef > 0 && baseRef > 0 {
			curCost, baseCost, unit = ratio(curNs, curRef), ratio(baseNs, baseRef), "x ref"
		}
		if curCost > baseCost*(1+gatePct/100) {
			bad = append(bad, fmt.Sprintf(
				"%s: wall-clock regressed >%g%%: %.3f%s vs baseline %.3f%s",
				name, gatePct, curCost, unit, baseCost, unit))
		}
	}
	baseBy := map[string]BenchEntry{}
	for _, e := range base.Workloads {
		baseBy[e.Name] = e
	}
	for _, e := range cur.Workloads {
		b, ok := baseBy[e.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: not in baseline", e.Name))
			continue
		}
		if e.Sim != b.Sim {
			bad = append(bad, fmt.Sprintf(
				"%s: simulated facts diverge from baseline (behaviour changed): %+v != %+v",
				e.Name, e.Sim, b.Sim))
		}
		wallGate(e.Name, e.NsPerRun, e.RefNs, b.NsPerRun, b.RefNs)
	}
	if cur.MiniSweep.Check != base.MiniSweep.Check ||
		cur.MiniSweep.NumGC != base.MiniSweep.NumGC ||
		cur.MiniSweep.BytesCopied != base.MiniSweep.BytesCopied ||
		cur.MiniSweep.GCCycles != base.MiniSweep.GCCycles {
		bad = append(bad, fmt.Sprintf(
			"mini-sweep: simulated facts diverge from baseline (behaviour changed): %+v != %+v",
			cur.MiniSweep, base.MiniSweep))
	}
	wallGate("mini-sweep", cur.MiniSweep.Ns, cur.MiniSweep.RefNs, base.MiniSweep.Ns, base.MiniSweep.RefNs)
	if minSpeedup > 0 && cur.MiniSweep.Speedup > 0 && cur.MiniSweep.Speedup < minSpeedup {
		bad = append(bad, fmt.Sprintf(
			"mini-sweep: speedup over reference kernels %.2fx below required %.2fx",
			cur.MiniSweep.Speedup, minSpeedup))
	}
	return bad
}
