// Command heapprof runs a benchmark with the heap profiler attached and
// prints its Figure 2-style per-allocation-site lifetime report, plus the
// pretenuring policy the paper's 80% old-cutoff rule would derive.
//
// It is also the bridge between offline profiling and the §9 online
// advisor: -export-store converts the offline profile into the adaptive
// advisor's warm-start store format, and -inspect-store summarizes an
// existing store file (from heapprof or `gcbench -adapt-store`).
//
// Usage:
//
//	heapprof -bench Knuth-Bendix
//	heapprof -bench Nqueen -cutoff 90 -repeat 0.05
//	heapprof -bench Nqueen -export-store nqueen.jsonl   # offline profile → advisor store
//	heapprof -inspect-store nqueen.jsonl                # summarize a store file
package main

import (
	"flag"
	"fmt"
	"os"

	"tilgc/gcsim"
)

func main() {
	bench := flag.String("bench", "", "benchmark to profile (see gcbench -list)")
	repeat := flag.Float64("repeat", gcsim.DefaultScale.Repeat,
		"workload repetition scale (1.0 = paper scale)")
	depth := flag.Float64("depth", 1.0, "structural depth scale")
	cutoff := flag.Float64("cutoff", 80, "old%% pretenuring cutoff")
	exportStore := flag.String("export-store", "",
		"export the offline profile as an adaptive-advisor warm-start store to FILE")
	inspectStore := flag.String("inspect-store", "",
		"summarize the advisor store at FILE and exit (no benchmark run)")
	flag.Parse()

	if *inspectStore != "" {
		if err := inspect(*inspectStore); err != nil {
			fmt.Fprintln(os.Stderr, "heapprof:", err)
			os.Exit(1)
		}
		return
	}

	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	info, err := gcsim.Describe(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "heapprof:", err)
		os.Exit(1)
	}

	scale := gcsim.Scale{Repeat: *repeat, Depth: *depth}
	// A small nursery samples object lifetimes frequently, sharpening the
	// old% estimates (the paper's profiled runs pay a similar overhead).
	rt := gcsim.NewRuntime(gcsim.Config{
		Collector:    gcsim.Generational,
		NurseryWords: 4 * 1024,
		Profile:      true,
		SiteNames:    info.Sites,
	})
	if _, err := rt.RunBenchmark(*bench, scale); err != nil {
		fmt.Fprintln(os.Stderr, "heapprof:", err)
		os.Exit(1)
	}
	p := rt.Profiler()
	opts := gcsim.DefaultReportOptions(*bench)
	opts.CutoffPct = *cutoff
	p.WriteReport(os.Stdout, opts)

	policy := gcsim.PolicyFromProfile(p, *cutoff, 32)
	fmt.Printf("\nDerived pretenuring policy (old%% >= %g): %d sites\n", *cutoff, policy.Len())
	for _, id := range policy.Sites() {
		fmt.Printf("  site %d  %s\n", id, info.Sites[id])
	}

	if *exportStore != "" {
		label := fmt.Sprintf("%s/heapprof repeat=%g", *bench, *repeat)
		profile := gcsim.AdaptProfileFromProfiler(p, label, *bench, *cutoff, 32)
		if err := writeStore(profile, *exportStore); err != nil {
			fmt.Fprintln(os.Stderr, "heapprof:", err)
			os.Exit(1)
		}
		fmt.Printf("\nExported %d sites (%d pretenured) to advisor store %s\n",
			len(profile.Sites), countPretenured(profile), *exportStore)
	}
}

// writeStore serializes a single-profile advisor store.
func writeStore(profile *gcsim.AdaptProfile, path string) error {
	store := &gcsim.AdaptStore{Profiles: []*gcsim.AdaptProfile{profile}}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	err = store.WriteJSONL(out)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	return err
}

func countPretenured(profile *gcsim.AdaptProfile) int {
	n := 0
	for _, s := range profile.Sites {
		if s.Pretenured {
			n++
		}
	}
	return n
}

// inspect summarizes an advisor store file. Schema mismatches and
// malformed records surface the store reader's descriptive errors.
func inspect(path string) error {
	in, err := os.Open(path)
	if err != nil {
		return err
	}
	defer in.Close()
	store, err := gcsim.ReadAdaptStore(in)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: %d profiles\n", path, len(store.Profiles))
	for _, p := range store.Profiles {
		fmt.Printf("\n%s (workload %s): %d sites, %d pretenured\n",
			p.Label, p.Workload, len(p.Sites), countPretenured(p))
		for _, s := range p.Sites {
			surv := 0.0
			if total := s.SurvWords + s.DeadWords; total > 0 {
				surv = 100 * float64(s.SurvWords) / float64(total)
			}
			mark := " "
			if s.Pretenured {
				mark = "*"
			}
			fmt.Printf("  %s site %-6d %-24s surv %5.1f%%  words %d/%d  placed/died %d/%d\n",
				mark, s.Site, s.Name, surv,
				s.SurvWords, s.SurvWords+s.DeadWords, s.PretPlaced, s.PretDied)
		}
	}
	return nil
}
