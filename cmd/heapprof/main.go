// Command heapprof runs a benchmark with the heap profiler attached and
// prints its Figure 2-style per-allocation-site lifetime report, plus the
// pretenuring policy the paper's 80% old-cutoff rule would derive.
//
// Usage:
//
//	heapprof -bench Knuth-Bendix
//	heapprof -bench Nqueen -cutoff 90 -repeat 0.05
package main

import (
	"flag"
	"fmt"
	"os"

	"tilgc/gcsim"
)

func main() {
	bench := flag.String("bench", "", "benchmark to profile (see gcbench -list)")
	repeat := flag.Float64("repeat", gcsim.DefaultScale.Repeat,
		"workload repetition scale (1.0 = paper scale)")
	depth := flag.Float64("depth", 1.0, "structural depth scale")
	cutoff := flag.Float64("cutoff", 80, "old%% pretenuring cutoff")
	flag.Parse()

	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	info, err := gcsim.Describe(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "heapprof:", err)
		os.Exit(1)
	}

	scale := gcsim.Scale{Repeat: *repeat, Depth: *depth}
	// A small nursery samples object lifetimes frequently, sharpening the
	// old% estimates (the paper's profiled runs pay a similar overhead).
	rt := gcsim.NewRuntime(gcsim.Config{
		Collector:    gcsim.Generational,
		NurseryWords: 4 * 1024,
		Profile:      true,
		SiteNames:    info.Sites,
	})
	if _, err := rt.RunBenchmark(*bench, scale); err != nil {
		fmt.Fprintln(os.Stderr, "heapprof:", err)
		os.Exit(1)
	}
	p := rt.Profiler()
	opts := gcsim.DefaultReportOptions(*bench)
	opts.CutoffPct = *cutoff
	p.WriteReport(os.Stdout, opts)

	policy := gcsim.PolicyFromProfile(p, *cutoff, 32)
	fmt.Printf("\nDerived pretenuring policy (old%% >= %g): %d sites\n", *cutoff, policy.Len())
	for _, id := range policy.Sites() {
		fmt.Printf("  site %d  %s\n", id, info.Sites[id])
	}
}
