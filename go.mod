module tilgc

go 1.22
